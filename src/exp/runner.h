// Scenario execution: one declarative ScenarioSpec in, one RunResult out —
// serially via RunScenario / ScenarioRun, or fanned out over a worker-
// thread pool via SweepRunner.
//
// Parallelism model: every spec builds its own Cell (simulator, channels,
// RNGs) on the worker that claims it, so workers share no mutable state;
// the per-spec seed derivation (exp/seed.h) makes each run a pure function
// of its spec.  Results come back in input order and are bit-identical at
// any job count — `SweepRunner(1)` and `SweepRunner(64)` agree to the last
// bit, which tests/exp_test.cc pins.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exp/scenario.h"
#include "mac/policy_cell.h"
#include "metrics/cell_metrics.h"
#include "metrics/experiment.h"
#include "obs/metrics_registry.h"
#include "obs/run_journal.h"
#include "obs/slo.h"

namespace osumac::exp {

/// Everything one run produces: the paper's figure metrics, the raw
/// base-station counters, cell-level aggregates, churn measurements and
/// (optionally) a metrics-registry snapshot.
struct RunResult {
  std::string name;
  std::uint64_t seed = 0;

  metrics::FigureMetrics figure;
  mac::BsCounters bs;

  /// Realized offered load (sanity check against the spec's rho).
  double offered_load = 0.0;
  std::int64_t measured_cycles = 0;
  std::int64_t capacity_bytes = 0;
  std::int64_t offered_bytes = 0;
  std::int64_t unique_payload_bytes = 0;
  std::int64_t uplink_messages_offered = 0;
  std::int64_t forward_packets_lost = 0;

  // --- downlink (when the spec drives one) ---------------------------------
  std::int64_t downlink_messages_generated = 0;  ///< in the measured window
  std::int64_t downlink_messages_completed = 0;
  double downlink_mean_delay_cycles = 0.0;

  // --- churn (when the spec stages arrivals) -------------------------------
  /// Per-arrival registration latency in cycles, in arrival order.
  std::vector<double> churn_registration_latency;
  int churn_registered = 0;

  /// Full registry snapshot (empty unless spec.collect_registry).
  obs::MetricsRegistry::Snapshot registry;

  /// Per-class QoS summary from the cell's always-on SloMonitor (access
  /// delay, checking delay, inter-service gap vs the paper's budgets),
  /// indexed by obs::SloClass.  Collected for every run; purely derived
  /// from the deterministic simulation, so sweep results stay bit-identical
  /// across job counts.
  std::vector<obs::SloClassSummary> slo;

  /// Network-wide rollup, populated only by multi-cell runs
  /// (exp::RunNetworkScenario); `cells == 0` means "not a network run" and
  /// keeps single-cell sweep artifacts byte-identical.  `slo` above then
  /// holds the *merged* digest (Network::SloRollup), whose quantiles come
  /// from the merged histograms — never from averaging per-cell quantiles.
  struct NetworkRollup {
    int cells = 0;
    int subscribers = 0;
    std::int64_t backbone_messages = 0;
    std::int64_t backbone_unrouted = 0;
    std::int64_t handoffs = 0;
  };
  NetworkRollup network;

  /// The run's per-cycle digest journal (obs/run_journal.h), populated only
  /// when spec.journal_every > 0; null — the default — keeps pre-existing
  /// sweep artifacts byte-identical.  Shared so RunResult stays copyable;
  /// the journal is immutable once the run finishes.
  std::shared_ptr<const obs::RunJournal> journal;
};

/// Optional callbacks into a run's phases, for callers that attach
/// observers, traces or timers to the live Cell (tools/osumac_sim).  Only
/// the serial entry points honor hooks; SweepRunner runs hook-free.
struct RunHooks {
  std::function<void(mac::Cell&)> after_build;    ///< before any cycle runs
  std::function<void(mac::Cell&)> after_warmup;   ///< stats just reset
  std::function<void(mac::Cell&)> before_finish;  ///< measured cycles done
  /// Policy-tenant counterparts of after_build/before_finish: called with
  /// the live PolicyCell when spec.mac_policy != "osu" (the Cell hooks
  /// above are never called for such runs).
  std::function<void(mac::PolicyCell&)> policy_after_build;
  std::function<void(mac::PolicyCell&)> policy_before_finish;
};

/// One scenario run with its phases exposed, for callers that need the
/// live Cell between phases (tests poke invariants mid-run; osumac_sim
/// attaches the auditor and event trace).  Typical use is just Execute().
class ScenarioRun {
 public:
  explicit ScenarioRun(const ScenarioSpec& spec);
  ~ScenarioRun();
  ScenarioRun(const ScenarioRun&) = delete;
  ScenarioRun& operator=(const ScenarioRun&) = delete;

  mac::Cell& cell() { return *cell_; }
  const ScenarioSpec& spec() const { return spec_; }
  const std::vector<int>& data_nodes() const { return data_nodes_; }
  const std::vector<int>& gps_nodes() const { return gps_nodes_; }

  /// Adds and powers the population, then runs the registration cycles.
  void BuildPopulation();
  /// Starts the spec's uplink/downlink workloads (they generate until the
  /// run is destroyed).
  void StartWorkloads();
  /// Runs the warm-up cycles and (per the spec) resets statistics.
  void Warmup();
  /// Stages churn arrivals and runs the measured cycles.
  void Measure();
  /// Assembles the RunResult from the finished cell.
  RunResult Finish();

  /// All phases in order.
  RunResult Execute();

  /// The run's journal, created by Warmup() when spec.journal_every > 0
  /// (null before that, and for journal-off specs).  Callers may install a
  /// reference (CellJournal::ExpectReference) before Measure().
  const std::shared_ptr<obs::RunJournal>& journal() const { return journal_; }

 private:
  ScenarioSpec spec_;
  std::unique_ptr<mac::Cell> cell_;
  std::vector<int> data_nodes_;
  std::vector<int> gps_nodes_;
  std::vector<int> churn_nodes_;
  std::vector<double> churn_latency_;
  std::unique_ptr<traffic::PoissonUplinkWorkload> uplink_;
  std::unique_ptr<traffic::PoissonDownlinkWorkload> downlink_;
  std::int64_t downlink_generated_at_reset_ = 0;
  std::shared_ptr<obs::RunJournal> journal_;
};

/// Runs one spec start to finish (the serial path; what each SweepRunner
/// worker executes per claimed spec).
RunResult RunScenario(const ScenarioSpec& spec, const RunHooks& hooks = {});

/// Executes a vector of specs on `jobs` worker threads (0 = one per
/// hardware core), returning results in input order.
class SweepRunner {
 public:
  explicit SweepRunner(int jobs = 0);

  int jobs() const { return jobs_; }

  /// Runs every spec; `progress` (if set) is invoked after each completed
  /// run with (completed, total), serialized, from worker threads.
  std::vector<RunResult> Run(
      const std::vector<ScenarioSpec>& specs,
      const std::function<void(int, int)>& progress = {}) const;

 private:
  // Immutable after construction; the fan-out's shared mutable state lives
  // inside common/parallel.h's ParallelForIndex, not on this object (which
  // is why Run() can be const and the runner reusable across sweeps).
  const int jobs_;
};

/// Worker count for `jobs` requested (0 → hardware concurrency, min 1).
int ResolveJobs(int jobs);

/// Scans argv for "--jobs N" / "--jobs=N" / "-j N" and returns it (or
/// `fallback`); the flag every migrated bench supports.
int JobsFromArgs(int argc, char** argv, int fallback = 0);

/// Runs `fn(i)` for every i in [0, count) across `jobs` workers.
void ParallelForIndex(int count, int jobs, const std::function<void(int)>& fn);

/// Generic ordered parallel map over [0, count) on `jobs` workers: the
/// non-Cell harnesses (the baseline-protocol grid) parallelize through
/// this.  `fn(i)` must not touch shared mutable state.
template <typename Fn>
auto ParallelMap(int count, int jobs, Fn&& fn)
    -> std::vector<decltype(fn(0))> {
  std::vector<decltype(fn(0))> results(static_cast<std::size_t>(count));
  ParallelForIndex(count, jobs,
                   [&](int i) { results[static_cast<std::size_t>(i)] = fn(i); });
  return results;
}

}  // namespace osumac::exp
