// A deterministic discrete-event simulation engine.
//
// This is the substrate that replaces the paper's JavaSim environment: an
// event queue keyed by (tick, insertion sequence) so that simultaneous events
// fire in a well-defined order and every run with the same seed is bit-for-bit
// reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/time.h"
#include "obs/wallclock.h"

namespace osumac::sim {

/// Handle for a scheduled event; usable to cancel it before it fires.
struct EventId {
  std::uint64_t seq = 0;
  friend bool operator==(const EventId&, const EventId&) = default;
};

/// Single-threaded discrete-event simulator.
///
/// Events are closures scheduled at absolute ticks.  Two events scheduled for
/// the same tick fire in scheduling order (FIFO), which the MAC relies on so
/// that, e.g., a slot-end event posted before a cycle-start event at the same
/// boundary tick is processed first.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  Tick now() const { return now_; }

  /// Schedules `fn` to run at absolute time `when` (>= now()).
  EventId ScheduleAt(Tick when, std::function<void()> fn);

  /// Schedules `fn` to run `delay` (>= 0) ticks from now.
  EventId ScheduleAfter(Tick delay, std::function<void()> fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event. Returns false if it already fired,
  /// was already cancelled, or never existed.
  bool Cancel(EventId id);

  /// Runs the earliest pending event. Returns false if the queue is empty.
  bool Step();

  /// Runs events with time <= `end`; afterwards now() == end if the queue
  /// still holds later events (or was emptied), so repeated RunUntil calls
  /// advance monotonically.
  void RunUntil(Tick end);

  /// Runs all events to exhaustion.
  void RunToCompletion();

  /// Number of events executed so far (diagnostic).
  std::uint64_t events_executed() const { return events_executed_; }

  /// Number of events currently pending (excluding cancelled).
  std::size_t pending_events() const { return pending_.size(); }

  /// Feeds wall-clock timings ("sim.run_until" per RunUntil call) into
  /// `timers` (null detaches).  Reporting only — never simulation logic.
  void AttachWallTimers(obs::WallTimerRegistry* timers) { wall_timers_ = timers; }

 private:
  struct QueueKey {
    Tick when = 0;
    std::uint64_t seq = 0;
  };
  struct KeyOrder {
    // std::priority_queue is a max-heap; invert for earliest-first, with
    // FIFO order among equal times.
    bool operator()(const QueueKey& a, const QueueKey& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Pops cancelled entries; returns true and fills `key` with the next live
  /// event without removing it, or returns false if none remain.
  bool PeekNext(QueueKey& key);

  obs::WallTimerRegistry* wall_timers_ = nullptr;
  Tick now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t events_executed_ = 0;
  // Lookup-only cancel index keyed by the monotonic sequence id: never
  // iterated, so hash order cannot leak into results.
  std::unordered_map<std::uint64_t,  // lint: allow-ordered-iteration
                     std::function<void()>> pending_;
  std::priority_queue<QueueKey, std::vector<QueueKey>, KeyOrder> queue_;
};

}  // namespace osumac::sim
