#include "sim/simulator.h"

#include <utility>

#include "common/check.h"

namespace osumac::sim {

EventId Simulator::ScheduleAt(Tick when, std::function<void()> fn) {
  OSUMAC_CHECK_GE(when, now_);  // cannot schedule into the past
  OSUMAC_CHECK(fn != nullptr);
  const std::uint64_t seq = next_seq_++;
  pending_.emplace(seq, std::move(fn));
  queue_.push(QueueKey{when, seq});
  return EventId{seq};
}

bool Simulator::Cancel(EventId id) { return pending_.erase(id.seq) > 0; }

bool Simulator::PeekNext(QueueKey& key) {
  while (!queue_.empty()) {
    const QueueKey top = queue_.top();
    if (pending_.contains(top.seq)) {
      key = top;
      return true;
    }
    queue_.pop();  // cancelled entry; discard lazily
  }
  return false;
}

bool Simulator::Step() {
  QueueKey key;
  if (!PeekNext(key)) return false;
  queue_.pop();
  auto node = pending_.extract(key.seq);
  now_ = key.when;
  ++events_executed_;
  node.mapped()();
  return true;
}

void Simulator::RunUntil(Tick end) {
  const obs::ScopedWallTimer timer(wall_timers_, "sim.run_until");
  QueueKey key;
  while (PeekNext(key) && key.when <= end) Step();
  if (now_ < end) now_ = end;
}

void Simulator::RunToCompletion() {
  while (Step()) {
  }
}

}  // namespace osumac::sim
