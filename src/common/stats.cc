#include "common/stats.h"

#include <algorithm>
#include "common/check.h"
#include <cmath>

namespace osumac {

void RunningStats::Add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double SampleSet::Quantile(double q) const {
  OSUMAC_CHECK(!samples_.empty());
  OSUMAC_CHECK(q >= 0.0 && q <= 1.0);
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (samples_.size() == 1) return samples_[0];
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double SampleSet::Mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::Max() const {
  OSUMAC_CHECK(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double JainFairnessIndex(std::span<const double> allocations) {
  if (allocations.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double u : allocations) {
    sum += u;
    sum_sq += u * u;
  }
  if (sum_sq == 0.0) return 1.0;  // all-zero allocations are (vacuously) fair
  return (sum * sum) / (static_cast<double>(allocations.size()) * sum_sq);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  OSUMAC_CHECK_GT(hi, lo);
  OSUMAC_CHECK_GT(bins, 0u);
}

void Histogram::Add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::int64_t>(std::floor((x - lo_) / width));
  bin = std::clamp<std::int64_t>(bin, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_lower(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::CumulativeFractionAtOrBelow(double x) const {
  if (total_ == 0) return 0.0;
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  std::int64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double upper = lo_ + width * static_cast<double>(i + 1);
    if (upper - 1e-12 > x) break;
    cum += counts_[i];
  }
  return static_cast<double>(cum) / static_cast<double>(total_);
}

}  // namespace osumac
