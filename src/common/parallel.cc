#include "common/parallel.h"

#include <algorithm>
#include <utility>

namespace osumac {

int ResolveParallelism(int jobs) {
  if (jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ParallelForIndex(int count, int jobs,
                      const std::function<void(int)>& fn) {
  if (count <= 0) return;
  const int workers = std::min(ResolveParallelism(jobs), count);
  if (workers <= 1) {
    for (int i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<int> next{0};
  std::atomic<bool> stop{false};
  Mutex mu;
  std::exception_ptr first_error;  // guarded by mu; local, so no GUARDED_BY

  auto worker = [&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      try {
        fn(i);
      } catch (...) {
        MutexLock lock(mu);
        if (!first_error) first_error = std::current_exception();
        stop.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers) - 1);
  for (int t = 1; t < workers; ++t) threads.emplace_back(worker);
  worker();  // the caller works its own share
  for (auto& thread : threads) thread.join();

  if (first_error) std::rethrow_exception(first_error);
}

TaskPool::TaskPool(int threads) : threads_(std::max(1, threads)) {
  workers_.reserve(static_cast<std::size_t>(threads_) - 1);
  for (int t = 1; t < threads_; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

TaskPool::~TaskPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  round_started_.NotifyAll();
  for (auto& worker : workers_) worker.join();
}

void TaskPool::RunSlice(const std::function<void(int)>& fn, int count) {
  while (!stop_.load(std::memory_order_relaxed)) {
    const int i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) break;
    try {
      fn(i);
    } catch (...) {
      MutexLock lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
      stop_.store(true, std::memory_order_relaxed);
    }
  }
}

void TaskPool::WorkerLoop() {
  std::uint64_t seen_round = 0;
  while (true) {
    const std::function<void(int)>* fn = nullptr;
    int count = 0;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && round_ == seen_round) round_started_.Wait(mu_);
      if (shutdown_) return;
      seen_round = round_;
      fn = round_fn_;
      count = round_count_;
    }
    RunSlice(*fn, count);
    bool last = false;
    {
      MutexLock lock(mu_);
      last = (--active_workers_ == 0);
    }
    if (last) round_done_.NotifyAll();
  }
}

void TaskPool::Run(int count, const std::function<void(int)>& fn) {
  if (count <= 0) return;
  if (threads_ <= 1 || count == 1) {
    for (int i = 0; i < count; ++i) fn(i);
    return;
  }

  next_.store(0, std::memory_order_relaxed);
  stop_.store(false, std::memory_order_relaxed);
  {
    MutexLock lock(mu_);
    first_error_ = nullptr;
    round_fn_ = &fn;
    round_count_ = count;
    active_workers_ = static_cast<int>(workers_.size());
    ++round_;
  }
  round_started_.NotifyAll();

  RunSlice(fn, count);  // the caller works its own share

  std::exception_ptr error;
  {
    MutexLock lock(mu_);
    while (active_workers_ != 0) round_done_.Wait(mu_);
    round_fn_ = nullptr;
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace osumac
