// Clang -Wthread-safety annotation macros (no-op on other compilers).
//
// These expand to Clang's capability attributes so the static thread-safety
// analysis can prove, at compile time, that every access to shared mutable
// state happens under the capability (mutex) that guards it.  The spellings
// follow the Clang documentation / Abseil convention so the annotations read
// the same here as in any other annotated codebase:
//
//   class CAPABILITY("mutex") Mutex { ... };        a lockable type
//   int value_ GUARDED_BY(mu_);                     data needing mu_ held
//   void Grow() REQUIRES(mu_);                      caller must hold mu_
//   void Publish() EXCLUDES(mu_);                   caller must NOT hold mu_
//
// GCC (the local toolchain) does not implement the analysis; the macros
// vanish there, so annotated code builds identically everywhere.  CI runs
// the real check: the static-analysis job builds with clang and
// -Wthread-safety -Werror (see docs/STATIC_ANALYSIS.md for the matrix and
// how to reproduce it locally).
//
// Note that libstdc++'s std::mutex carries no capability attribute, so
// GUARDED_BY(some_std_mutex) would be ignored by the analysis.  Guarded
// members must name an annotated capability type: use osumac::Mutex from
// common/sync.h.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define OSUMAC_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define OSUMAC_THREAD_ANNOTATION(x)  // no-op on non-Clang
#endif

/// Marks a class as a capability (lockable) type; `x` is the capability name
/// used in diagnostics, e.g. CAPABILITY("mutex").
#define CAPABILITY(x) OSUMAC_THREAD_ANNOTATION(capability(x))

/// Marks a RAII guard class whose constructor acquires and destructor
/// releases a capability.
#define SCOPED_CAPABILITY OSUMAC_THREAD_ANNOTATION(scoped_lockable)

/// The member may only be read or written while holding the given capability.
#define GUARDED_BY(x) OSUMAC_THREAD_ANNOTATION(guarded_by(x))

/// The pointee may only be accessed while holding the given capability (the
/// pointer itself is unguarded).
#define PT_GUARDED_BY(x) OSUMAC_THREAD_ANNOTATION(pt_guarded_by(x))

/// The function may only be called while holding the listed capabilities.
#define REQUIRES(...) \
  OSUMAC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// The function may only be called while holding the listed capabilities in
/// shared (reader) mode.
#define REQUIRES_SHARED(...) \
  OSUMAC_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// The function acquires the listed capabilities and holds them on return.
#define ACQUIRE(...) \
  OSUMAC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function releases the listed capabilities (they must be held).
#define RELEASE(...) \
  OSUMAC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `b`.
#define TRY_ACQUIRE(b, ...) \
  OSUMAC_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

/// The function may only be called while NOT holding the listed capabilities
/// (it acquires them internally; calling with them held would deadlock).
#define EXCLUDES(...) OSUMAC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// The function returns a reference to the capability guarding this object.
#define RETURN_CAPABILITY(x) OSUMAC_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis inside one function.  Every use must
/// say why in a comment and appear in the tools/osumac_lint waiver ledger.
#define NO_THREAD_SAFETY_ANALYSIS \
  OSUMAC_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Compile-time assertion that the capability is held (for helpers called
/// only with the lock already taken, where REQUIRES is not expressible).
#define ASSERT_CAPABILITY(x) OSUMAC_THREAD_ANNOTATION(assert_capability(x))
