// Statistics helpers used by the metrics layer and the benchmark harnesses:
// running moments, sample quantiles, Jain's fairness index (reference [11]
// of the paper), and fixed-bin histograms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace osumac {

/// Single-pass mean / variance / min / max accumulator (Welford's method).
class RunningStats {
 public:
  void Add(double x);

  std::int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Retains all samples; answers arbitrary quantile queries.
/// Suitable for the per-run sample counts in this simulator (<= millions).
class SampleSet {
 public:
  void Add(double x) { samples_.push_back(x); sorted_ = false; }

  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Quantile by linear interpolation, q in [0, 1]. Requires non-empty.
  double Quantile(double q) const;
  double Median() const { return Quantile(0.5); }
  double Mean() const;
  double Max() const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Jain's fairness index: (sum u_i)^2 / (n * sum u_i^2).
/// Equals 1 when all allocations are equal; 1/n in the most unfair case.
double JainFairnessIndex(std::span<const double> allocations);

/// Fixed-width-bin histogram over [lo, hi); out-of-range samples clamp to
/// the boundary bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void Add(double x);

  std::size_t bins() const { return counts_.size(); }
  std::int64_t bin_count(std::size_t i) const { return counts_[i]; }
  double bin_lower(std::size_t i) const;
  std::int64_t total() const { return total_; }

  /// Fraction of samples with value <= x (by bin upper edge).
  double CumulativeFractionAtOrBelow(double x) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::int64_t> counts_;
  std::int64_t total_ = 0;
};

}  // namespace osumac
