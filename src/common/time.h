// Integer-tick simulation time for the OSU narrow-band testbed model.
//
// The forward channel runs at 3200 channel symbols/s and the reverse channel
// at 2400 symbols/s.  Choosing a tick of 1/48000 s makes *every* interval in
// the paper an exact integer number of ticks:
//
//   1 forward symbol  = 15 ticks          1 reverse symbol = 20 ticks
//   20 ms half-duplex switch guard = 960 ticks
//   GPS slot   (210 rev sym) = 4200 ticks  = 0.0875 s
//   data slot  (969 rev sym) = 19380 ticks = 0.40375 s
//   forward notification cycle (12750 fwd sym) = 191250 ticks = 3.984375 s
//
// All scheduling arithmetic is therefore exact; no floating-point drift can
// perturb slot overlap or half-duplex guard computations.
#pragma once

#include <cstdint>

namespace osumac {

/// Simulation time or duration, in units of 1/48000 second.
using Tick = std::int64_t;

/// Ticks per second of simulated time.
inline constexpr Tick kTicksPerSecond = 48000;

/// Ticks per forward-channel symbol (3200 sym/s).
inline constexpr Tick kTicksPerForwardSymbol = kTicksPerSecond / 3200;  // 15

/// Ticks per reverse-channel symbol (2400 sym/s).
inline constexpr Tick kTicksPerReverseSymbol = kTicksPerSecond / 2400;  // 20

static_assert(kTicksPerForwardSymbol * 3200 == kTicksPerSecond);
static_assert(kTicksPerReverseSymbol * 2400 == kTicksPerSecond);

/// Converts a tick count to (floating-point) seconds, for reporting only.
constexpr double ToSeconds(Tick t) {
  return static_cast<double>(t) / static_cast<double>(kTicksPerSecond);
}

/// Converts whole milliseconds to ticks (exact: 1 ms == 48 ticks).
constexpr Tick FromMilliseconds(std::int64_t ms) { return ms * (kTicksPerSecond / 1000); }

/// Converts whole seconds to ticks.
constexpr Tick FromSeconds(std::int64_t s) { return s * kTicksPerSecond; }

/// Duration of `symbols` forward-channel symbols.
constexpr Tick ForwardSymbols(std::int64_t symbols) { return symbols * kTicksPerForwardSymbol; }

/// Duration of `symbols` reverse-channel symbols.
constexpr Tick ReverseSymbols(std::int64_t symbols) { return symbols * kTicksPerReverseSymbol; }

/// Half-open time interval [begin, end) in ticks.
struct Interval {
  Tick begin = 0;
  Tick end = 0;

  constexpr Tick length() const { return end - begin; }
  constexpr bool empty() const { return end <= begin; }

  /// True if the two half-open intervals share at least one tick.
  constexpr bool Overlaps(const Interval& other) const {
    return begin < other.end && other.begin < end;
  }

  /// True if `t` lies within [begin, end).
  constexpr bool Contains(Tick t) const { return t >= begin && t < end; }

  /// Interval grown by `guard` ticks on both sides (used for the 20 ms
  /// transmit/receive switch-over guard).
  constexpr Interval Padded(Tick guard) const { return {begin - guard, end + guard}; }

  friend constexpr bool operator==(const Interval&, const Interval&) = default;
};

}  // namespace osumac
