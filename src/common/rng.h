// Deterministic random number generation for simulations.
//
// Every stochastic component takes an explicit Rng (or a seed) so that runs
// are reproducible; there is no global RNG state.
#pragma once

#include <cstdint>
#include <random>

namespace osumac {

/// A seeded pseudo-random generator with the distribution helpers the
/// simulator needs.  Thin wrapper over std::mt19937_64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  double UniformReal(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

  /// Exponentially distributed value with the given mean (> 0).
  double Exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Geometric number of failures before first success, success prob p.
  std::int64_t Geometric(double p) {
    return std::geometric_distribution<std::int64_t>(p)(engine_);
  }

  /// Derives an independent child generator (e.g. one per subscriber).
  Rng Fork() { return Rng(engine_()); }

  /// Raw 64-bit draw.
  std::uint64_t Next() { return engine_(); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace osumac
