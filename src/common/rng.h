// Deterministic random number generation for simulations.
//
// Every stochastic component takes an explicit Rng (or a seed) so that runs
// are reproducible; there is no global RNG state.
#pragma once

#include <cstdint>
#include <random>

namespace osumac {

/// SplitMix64 increment (2^64 / phi), the standard stream-splitting gamma.
inline constexpr std::uint64_t kSplitMix64Gamma = 0x9E3779B97F4A7C15ULL;

/// One SplitMix64 output step (Steele, Lea & Flood, OOPSLA'14).
inline std::uint64_t SplitMix64(std::uint64_t x) {
  x += kSplitMix64Gamma;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Sequential SplitMix64 generator: the k-th draw is SplitMix64(seed + k*gamma).
/// Used by the fast channel error models, which own their stream so enabling
/// them never perturbs the simulation's std::mt19937_64 draw order.
class SplitMix64Rng {
 public:
  explicit SplitMix64Rng(std::uint64_t seed) : state_(seed) {}

  // Move-only: copying a stream forks it silently — two consumers would
  // replay the same draws, breaking the one-stream-per-consumer discipline
  // (exp/seed.h) that makes sweeps bit-identical at any job count.
  SplitMix64Rng(const SplitMix64Rng&) = delete;
  SplitMix64Rng& operator=(const SplitMix64Rng&) = delete;
  SplitMix64Rng(SplitMix64Rng&&) = default;
  SplitMix64Rng& operator=(SplitMix64Rng&&) = default;

  /// Raw 64-bit draw.
  [[nodiscard]] std::uint64_t Next() {
    const std::uint64_t out = SplitMix64(state_);
    state_ += kSplitMix64Gamma;
    return out;
  }

  /// Uniform double in the OPEN interval (0, 1) — safe as a log() argument.
  [[nodiscard]] double NextOpenDouble() {
    return (static_cast<double>(Next() >> 12) + 0.5) * 0x1.0p-52;
  }

 private:
  std::uint64_t state_;
};

/// Derives the seed of the `index`-th sibling sub-stream of `seed`.
///
/// Mixes the root seed through SplitMix64 *before* adding the per-index
/// offset, so distinct (seed, index) pairs cannot collide the way plain
/// `seed + index * constant` does (e.g. seeds 7/index 2 and 7 + 2*gamma /
/// index 0 are the same additive stream).  This is the required spelling for
/// fanning one seed out to N peer consumers — per-cell Network seeds, sweep
/// workers, anything sharded by index.
[[nodiscard]] inline std::uint64_t DeriveSubstreamSeed(std::uint64_t seed,
                                                      std::uint64_t index) {
  return SplitMix64(SplitMix64(seed) + index * kSplitMix64Gamma);
}

/// A seeded pseudo-random generator with the distribution helpers the
/// simulator needs.  Thin wrapper over std::mt19937_64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Move-only, like SplitMix64Rng: an accidental copy is an accidental
  // stream fork.  Components that need an independent stream take one by
  // value (moved in) or call Fork(), which advances the parent.
  Rng(const Rng&) = delete;
  Rng& operator=(const Rng&) = delete;
  Rng(Rng&&) = default;
  Rng& operator=(Rng&&) = default;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  [[nodiscard]] double UniformReal(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Exponentially distributed value with the given mean (> 0).
  [[nodiscard]] double Exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Geometric number of failures before first success, success prob p.
  [[nodiscard]] std::int64_t Geometric(double p) {
    return std::geometric_distribution<std::int64_t>(p)(engine_);
  }

  /// Derives an independent child generator (e.g. one per subscriber).
  [[nodiscard]] Rng Fork() { return Rng(engine_()); }

  /// Raw 64-bit draw.
  [[nodiscard]] std::uint64_t Next() { return engine_(); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace osumac
