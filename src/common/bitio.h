// MSB-first bit-level serialization used for the forward-channel control
// fields (Section 3.1 of the paper): fields such as 6-bit user IDs and 16-bit
// EINs are packed back-to-back into the 768 information bits of two
// RS(64,48) codewords.
#pragma once

#include <cstdint>
#include <vector>

namespace osumac {

/// Appends fixed-width big-endian bit fields to a growing byte buffer.
class BitWriter {
 public:
  /// Appends the low `width` bits of `value`, most significant bit first.
  /// Requires 0 < width <= 64; bits of `value` above `width` must be zero.
  void Write(std::uint64_t value, int width);

  /// Appends `count` zero bits (reserved / padding fields).
  void WriteZeros(int count);

  /// Number of bits written so far.
  int bit_size() const { return bit_size_; }

  /// Returns the packed bytes; the final partial byte (if any) is
  /// zero-padded in its low bits.
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

  /// Returns packed bytes padded with zero bytes up to `min_bytes`.
  std::vector<std::uint8_t> BytesPaddedTo(std::size_t min_bytes) const;

 private:
  std::vector<std::uint8_t> bytes_;
  int bit_size_ = 0;
};

/// Reads fixed-width big-endian bit fields from a byte buffer.
class BitReader {
 public:
  explicit BitReader(std::vector<std::uint8_t> bytes) : bytes_(std::move(bytes)) {}

  /// Reads the next `width` bits (MSB first). Reading past the end yields
  /// zero bits and sets overflowed().
  std::uint64_t Read(int width);

  /// Skips `count` bits.
  void Skip(int count);

  /// True if any Read/Skip went past the end of the buffer.
  bool overflowed() const { return overflowed_; }

  int bit_position() const { return bit_pos_; }

 private:
  std::vector<std::uint8_t> bytes_;
  int bit_pos_ = 0;
  bool overflowed_ = false;
};

}  // namespace osumac
