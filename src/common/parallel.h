// Deterministic fork/join parallelism for index-shaped work.
//
// Two entry points share one discipline — `fn(i)` must be a pure function
// of the index (no shared mutable state, no dependence on claim order or
// thread identity), which is what makes every parallel construct in this
// codebase bit-identical at any worker count:
//
//  * ParallelForIndex(count, jobs, fn): one-shot fan-out.  Spawns workers,
//    runs fn over [0, count), joins.  This is the sweep engine's primitive
//    (src/exp/runner.h re-exports it); per-call thread spawn cost is noise
//    against whole-scenario work items.
//
//  * TaskPool: a persistent pool for callers that fan out *repeatedly* with
//    a barrier between rounds — the parallel mac::Network runs one round
//    per notification cycle, where respawning threads every cycle would
//    dominate the cycle itself.  Workers park on a condition variable
//    between rounds; Run() is a full barrier (every index completed before
//    it returns).
//
// Both propagate the first worker exception to the caller and stop
// siblings from claiming further indices after a failure.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace osumac {

/// Worker count for `jobs` requested (0 → hardware concurrency, min 1).
int ResolveParallelism(int jobs);

/// Runs `fn(i)` for every i in [0, count) across `jobs` workers (0 = one
/// per hardware core).  Blocks until every index completed; rethrows the
/// first worker exception.  `fn` must not touch shared mutable state.
void ParallelForIndex(int count, int jobs, const std::function<void(int)>& fn);

/// A persistent worker pool with barrier semantics: construct once, call
/// Run() once per round.  `threads` counts the caller — a TaskPool(8) spawns
/// seven workers and the Run() caller works the eighth share itself, so
/// TaskPool(1) is the serial loop with no threads at all.
class TaskPool {
 public:
  explicit TaskPool(int threads);
  ~TaskPool();
  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  int threads() const { return threads_; }

  /// Runs `fn(i)` for every i in [0, count); returns after ALL indices
  /// completed (a barrier).  Rethrows the first worker exception after the
  /// round has fully drained.  Not reentrant: one Run() at a time.
  void Run(int count, const std::function<void(int)>& fn) EXCLUDES(mu_);

 private:
  void WorkerLoop() EXCLUDES(mu_);
  /// Claims indices from the shared cursor until the round is exhausted or
  /// a sibling failed.  Runs on workers and on the Run() caller alike.
  void RunSlice(const std::function<void(int)>& fn, int count) EXCLUDES(mu_);

  const int threads_;
  Mutex mu_;
  CondVar round_started_;  ///< workers park here between rounds
  CondVar round_done_;     ///< Run() parks here until workers drain
  std::uint64_t round_ GUARDED_BY(mu_) = 0;
  int round_count_ GUARDED_BY(mu_) = 0;
  const std::function<void(int)>* round_fn_ GUARDED_BY(mu_) = nullptr;
  int active_workers_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;
  std::exception_ptr first_error_ GUARDED_BY(mu_);
  std::atomic<int> next_{0};       ///< next unclaimed index of this round
  std::atomic<bool> stop_{false};  ///< latched by the first failing worker
  // Owner-thread confined: written by the constructor, joined by the
  // destructor, never touched by workers or Run() — joining under mu_ would
  // deadlock against workers reacquiring it to observe shutdown_.
  std::vector<std::thread> workers_;  // lint: allow-shared-state-annotation
};

}  // namespace osumac
