#include "common/logging.h"

namespace osumac {
namespace {
LogLevel g_level = LogLevel::kNone;
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

void LogAt(LogLevel level, Tick now, const char* tag, const std::string& message) {
  if (static_cast<int>(level) > static_cast<int>(g_level)) return;
  std::fprintf(stderr, "[%10.4fs] %s: %s\n", ToSeconds(now), tag, message.c_str());
}

}  // namespace osumac
