#include "common/logging.h"

#include <atomic>

namespace osumac {
namespace {
// Atomic, not plain: the level gate is read from every thread that logs
// (sweep workers included).  Relaxed ordering is enough — the value is a
// monotonic filter, not a synchronization point.
std::atomic<LogLevel> g_level{LogLevel::kNone};

void Emit(Tick now, const char* tag, const std::string& message) {
  std::fprintf(stderr, "[%10.4fs t=%lld] %s: %s\n", ToSeconds(now),
               static_cast<long long>(now), tag, message.c_str());
}
}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }
void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void LogAt(LogLevel level, Tick now, const char* tag, const std::string& message) {
  if (static_cast<int>(level) > static_cast<int>(GetLogLevel())) return;
  Emit(now, tag, message);
}

void LogAlways(Tick now, const char* tag, const std::string& message) {
  Emit(now, tag, message);
}

}  // namespace osumac
