#include "common/logging.h"

namespace osumac {
namespace {
LogLevel g_level = LogLevel::kNone;

void Emit(Tick now, const char* tag, const std::string& message) {
  std::fprintf(stderr, "[%10.4fs t=%lld] %s: %s\n", ToSeconds(now),
               static_cast<long long>(now), tag, message.c_str());
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

void LogAt(LogLevel level, Tick now, const char* tag, const std::string& message) {
  if (static_cast<int>(level) > static_cast<int>(g_level)) return;
  Emit(now, tag, message);
}

void LogAlways(Tick now, const char* tag, const std::string& message) {
  Emit(now, tag, message);
}

}  // namespace osumac
