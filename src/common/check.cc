#include "common/check.h"

#include <cstdlib>
#include <utility>

#include "common/logging.h"

namespace osumac::check {
namespace {

// Each simulated cell is single-threaded, but the sweep runner
// (src/exp/runner.cc) drives independent cells on parallel workers — the
// hooks are therefore thread-local: innermost scope on THIS thread wins,
// and a check failing on one worker reports that worker's cell.
thread_local std::function<Tick()> g_sim_clock;          // NOLINT(cert-err58-cpp)
thread_local std::function<std::string()> g_state_dump;  // NOLINT(cert-err58-cpp)

}  // namespace

ScopedSimClock::ScopedSimClock(std::function<Tick()> now)
    : previous_(std::exchange(g_sim_clock, std::move(now))) {}

ScopedSimClock::~ScopedSimClock() { g_sim_clock = std::move(previous_); }

ScopedStateDump::ScopedStateDump(std::function<std::string()> dump)
    : previous_(std::exchange(g_state_dump, std::move(dump))) {}

ScopedStateDump::~ScopedStateDump() { g_state_dump = std::move(previous_); }

std::optional<Tick> CurrentTick() {
  if (!g_sim_clock) return std::nullopt;
  return g_sim_clock();
}

void FailCheck(const char* file, int line, const char* expr,
               const std::string& detail) {
  const Tick now = CurrentTick().value_or(0);
  std::string message = "CHECK failed: ";
  message += expr;
  message += " at ";
  message += file;
  message += ":";
  message += std::to_string(line);
  if (!detail.empty()) {
    message += " (";
    message += detail;
    message += ")";
  }
  // Through the same sink as regular logging so the report carries the
  // simulation time (raw tick + seconds) in the standard format.
  LogAlways(now, "check", message);
  if (g_state_dump) {
    LogAlways(now, "check", "state dump:\n" + g_state_dump());
  }
  std::abort();
}

}  // namespace osumac::check
