// Always-on contract checking.
//
// The protocol's correctness claims are invariants (GPS slot rules R1-R3,
// the <= 4 s access interval, the 20 ms half-duplex guard, ...), so their
// runtime guards must not vanish in optimized builds the way assert() does
// under NDEBUG.  OSUMAC_CHECK* fire in *every* build type; OSUMAC_DCHECK*
// are reserved for per-symbol hot paths where the branch itself is a
// measurable cost and compile away under NDEBUG like assert().
//
//   OSUMAC_CHECK(cond)                 abort if !cond
//   OSUMAC_CHECK(cond && "why")        same, message travels in the report
//   OSUMAC_CHECK_EQ/NE/LT/LE/GT/GE(a, b)   comparison with operand capture:
//                                      the failure report prints both values
//   OSUMAC_DCHECK / OSUMAC_DCHECK_*   debug-only twins (still type-checked
//                                      in release builds, never evaluated)
//
// A failing check reports file:line, the expression, captured operands, the
// current simulation tick (if a sim clock is registered) and every
// registered state dump, through the logging sink, then calls std::abort().
//
// The registration hooks are thread-local: each simulated cell is
// single-threaded, but the sweep runner (src/exp) drives independent cells
// on parallel workers, and a failure must report the failing worker's cell.
#pragma once

#include <functional>
#include <optional>
#include <sstream>
#include <string>

#include "common/time.h"

namespace osumac::check {

/// True when OSUMAC_DCHECK* are live (i.e. NDEBUG is not defined).
#ifdef NDEBUG
inline constexpr bool kDChecksEnabled = false;
#else
inline constexpr bool kDChecksEnabled = true;
#endif

/// Registers the simulation clock consulted by failure reports, restoring
/// the previous clock on destruction (scopes nest; the innermost wins).
/// The Cell installs one so every check failure carries simulation time.
class ScopedSimClock {
 public:
  explicit ScopedSimClock(std::function<Tick()> now);
  ~ScopedSimClock();
  ScopedSimClock(const ScopedSimClock&) = delete;
  ScopedSimClock& operator=(const ScopedSimClock&) = delete;

 private:
  std::function<Tick()> previous_;
};

/// Registers a state-dump callback (e.g. a cell/scheduler snapshot) printed
/// on any check failure, restoring the previous dumper on destruction.
class ScopedStateDump {
 public:
  explicit ScopedStateDump(std::function<std::string()> dump);
  ~ScopedStateDump();
  ScopedStateDump(const ScopedStateDump&) = delete;
  ScopedStateDump& operator=(const ScopedStateDump&) = delete;

 private:
  std::function<std::string()> previous_;
};

/// Current simulation tick per the registered clock, or nullopt if none.
std::optional<Tick> CurrentTick();

/// Prints the failure report (file:line, expression, operands, sim tick,
/// state dump) through the logging sink and aborts.  `detail` is extra
/// context, e.g. captured operand values; empty is fine.
[[noreturn]] void FailCheck(const char* file, int line, const char* expr,
                            const std::string& detail);

/// Cold path of the comparison macros: stringifies both operands.
template <typename A, typename B>
[[noreturn]] void FailCheckOp(const char* file, int line, const char* expr,
                              const A& lhs, const B& rhs) {
  std::ostringstream os;
  os << "lhs = " << lhs << ", rhs = " << rhs;
  FailCheck(file, line, expr, os.str());
}

}  // namespace osumac::check

// NOLINTBEGIN(cppcoreguidelines-macro-usage)

#define OSUMAC_CHECK(cond)                                              \
  do {                                                                  \
    if (__builtin_expect(!(cond), 0)) {                                 \
      ::osumac::check::FailCheck(__FILE__, __LINE__, #cond, {});        \
    }                                                                   \
  } while (0)

#define OSUMAC_CHECK_OP_(opstr, op, a, b)                                     \
  do {                                                                        \
    const auto& osumac_lhs_ = (a);                                            \
    const auto& osumac_rhs_ = (b);                                            \
    if (__builtin_expect(!(osumac_lhs_ op osumac_rhs_), 0)) {                 \
      ::osumac::check::FailCheckOp(__FILE__, __LINE__, #a " " opstr " " #b,   \
                                   osumac_lhs_, osumac_rhs_);                 \
    }                                                                         \
  } while (0)

#define OSUMAC_CHECK_EQ(a, b) OSUMAC_CHECK_OP_("==", ==, a, b)
#define OSUMAC_CHECK_NE(a, b) OSUMAC_CHECK_OP_("!=", !=, a, b)
#define OSUMAC_CHECK_LT(a, b) OSUMAC_CHECK_OP_("<", <, a, b)
#define OSUMAC_CHECK_LE(a, b) OSUMAC_CHECK_OP_("<=", <=, a, b)
#define OSUMAC_CHECK_GT(a, b) OSUMAC_CHECK_OP_(">", >, a, b)
#define OSUMAC_CHECK_GE(a, b) OSUMAC_CHECK_OP_(">=", >=, a, b)

// Debug-only twins.  The `if (kDChecksEnabled)` keeps the condition
// compiled (and its operands odr-used, so no unused-variable warnings) in
// every build type while the optimizer removes the dead branch under
// NDEBUG.  tools/lint.py verifies that the always-on macros above are NOT
// themselves gated on NDEBUG.
#define OSUMAC_DCHECK(cond)                                   \
  do {                                                        \
    if (::osumac::check::kDChecksEnabled) OSUMAC_CHECK(cond); \
  } while (0)
#define OSUMAC_DCHECK_OP_(name, a, b)                        \
  do {                                                       \
    if (::osumac::check::kDChecksEnabled) name(a, b);        \
  } while (0)
#define OSUMAC_DCHECK_EQ(a, b) OSUMAC_DCHECK_OP_(OSUMAC_CHECK_EQ, a, b)
#define OSUMAC_DCHECK_NE(a, b) OSUMAC_DCHECK_OP_(OSUMAC_CHECK_NE, a, b)
#define OSUMAC_DCHECK_LT(a, b) OSUMAC_DCHECK_OP_(OSUMAC_CHECK_LT, a, b)
#define OSUMAC_DCHECK_LE(a, b) OSUMAC_DCHECK_OP_(OSUMAC_CHECK_LE, a, b)
#define OSUMAC_DCHECK_GT(a, b) OSUMAC_DCHECK_OP_(OSUMAC_CHECK_GT, a, b)
#define OSUMAC_DCHECK_GE(a, b) OSUMAC_DCHECK_OP_(OSUMAC_CHECK_GE, a, b)

// NOLINTEND(cppcoreguidelines-macro-usage)
