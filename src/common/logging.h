// Minimal leveled logging for simulator internals.  Off (kNone) by default so
// that benchmarks and tests run silently; examples turn on kInfo/kDebug to
// narrate protocol activity.
#pragma once

#include <cstdio>
#include <string>

#include "common/time.h"

namespace osumac {

enum class LogLevel { kNone = 0, kError = 1, kInfo = 2, kDebug = 3 };

/// Process-wide log threshold.  Stored atomically: SweepRunner workers log
/// through the same backend, so the level must be readable from any thread
/// without a data race (set it before fanning work out; a mid-sweep change
/// is applied on each worker's next check, with no ordering guarantee).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Emits "[   12.3456s t=593100] tag: message" to stderr if `level` is
/// enabled.  The raw tick rides along because %.4f seconds alone loses tick
/// precision at long horizons (1 tick = 1/48000 s ~ 0.00002 s).
void LogAt(LogLevel level, Tick now, const char* tag, const std::string& message);

/// Same sink and format as LogAt but unconditional — check failures and
/// audit reports use this so they are never swallowed by the level gate.
void LogAlways(Tick now, const char* tag, const std::string& message);

}  // namespace osumac
