#include "common/bitio.h"

#include "common/check.h"

namespace osumac {

void BitWriter::Write(std::uint64_t value, int width) {
  OSUMAC_DCHECK(width > 0 && width <= 64);
  OSUMAC_DCHECK(width == 64 || (value >> width) == 0);
  for (int i = width - 1; i >= 0; --i) {
    const int bit = static_cast<int>((value >> i) & 1u);
    const int byte_index = bit_size_ / 8;
    const int bit_in_byte = 7 - (bit_size_ % 8);
    if (byte_index == static_cast<int>(bytes_.size())) bytes_.push_back(0);
    if (bit != 0) bytes_[static_cast<std::size_t>(byte_index)] |= static_cast<std::uint8_t>(1u << bit_in_byte);
    ++bit_size_;
  }
}

void BitWriter::WriteZeros(int count) {
  OSUMAC_DCHECK_GE(count, 0);
  for (int i = 0; i < count; i += 64) {
    const int chunk = count - i < 64 ? count - i : 64;
    Write(0, chunk);
  }
}

std::vector<std::uint8_t> BitWriter::BytesPaddedTo(std::size_t min_bytes) const {
  std::vector<std::uint8_t> out = bytes_;
  if (out.size() < min_bytes) out.resize(min_bytes, 0);
  return out;
}

std::uint64_t BitReader::Read(int width) {
  OSUMAC_DCHECK(width > 0 && width <= 64);
  std::uint64_t value = 0;
  for (int i = 0; i < width; ++i) {
    const int byte_index = bit_pos_ / 8;
    int bit = 0;
    if (byte_index < static_cast<int>(bytes_.size())) {
      const int bit_in_byte = 7 - (bit_pos_ % 8);
      bit = (bytes_[static_cast<std::size_t>(byte_index)] >> bit_in_byte) & 1;
    } else {
      overflowed_ = true;
    }
    value = (value << 1) | static_cast<std::uint64_t>(bit);
    ++bit_pos_;
  }
  return value;
}

void BitReader::Skip(int count) {
  OSUMAC_DCHECK_GE(count, 0);
  bit_pos_ += count;
  if (bit_pos_ > static_cast<int>(bytes_.size()) * 8) overflowed_ = true;
}

}  // namespace osumac
