// Annotated synchronization primitives for the few places the codebase
// shares mutable state across threads.
//
// osumac::Mutex is a zero-overhead wrapper over std::mutex that carries the
// Clang capability attribute, so members declared GUARDED_BY(mu_) are
// statically checked under -Wthread-safety (libstdc++'s std::mutex has no
// such attribute, which would silence the analysis).  osumac::MutexLock is
// the matching RAII guard.
//
// The concurrency model stays deliberately simple (docs/STATIC_ANALYSIS.md):
// almost everything is thread-confined — each SweepRunner worker owns its
// whole Cell, so the simulator core needs no locks at all.  A Mutex appears
// only where an object can outlive or span that confinement: the sweep
// worker pool's shared slots (src/exp/runner.cc) and the obs endpoints a
// future multi-threaded Network may share (MetricsRegistry, EventTrace,
// FlightRecorder).
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace osumac {

/// A std::mutex with the Clang "mutex" capability attribute.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { impl_.lock(); }
  void Unlock() RELEASE() { impl_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return impl_.try_lock(); }

  // BasicLockable spellings so CondVar (std::condition_variable_any) can
  // release/reacquire the capability inside Wait.  Annotated like their
  // capitalized twins, so analyzed callers still balance.
  void lock() ACQUIRE() { impl_.lock(); }
  void unlock() RELEASE() { impl_.unlock(); }

 private:
  std::mutex impl_;
};

/// Condition variable over osumac::Mutex.  Wait() must be called with the
/// mutex held; like std::condition_variable it releases the mutex while
/// blocked and reacquires before returning (the release/reacquire happens
/// inside the standard library, outside -Wthread-safety's view, so the
/// caller's lock set is unchanged across the call).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mutex) REQUIRES(mutex) { impl_.wait(mutex); }

  template <typename Predicate>
  void Wait(Mutex& mutex, Predicate done) REQUIRES(mutex) {
    impl_.wait(mutex, std::move(done));
  }

  void NotifyOne() { impl_.notify_one(); }
  void NotifyAll() { impl_.notify_all(); }

 private:
  std::condition_variable_any impl_;
};

/// RAII guard: acquires on construction, releases on destruction.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.Lock();
  }
  ~MutexLock() RELEASE() { mutex_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

}  // namespace osumac
