#!/usr/bin/env python3
"""Canonical digest of a sweep JSON (BENCH_sweeps.json / figures output).

The CI TSan soak runs the default figure sweep at --jobs 1 and --jobs 8 and
requires identical results.  The raw files can never be byte-identical —
the provenance header embeds `jobs` and `wall_seconds` — so this tool hashes
the *results*: everything under "points", with the provenance dropped, after
a JSON round-trip that normalizes formatting.  Two runs agree iff their
digests agree.

    python3 tools/sweep_digest.py figures/BENCH_sweeps.json [more.json ...]

BENCH_perf.json files (an obs::WriteWallTimersJson "phases" array) get a
different treatment: timings are machine-dependent, so their digest covers
only the sorted *set of phase names*.  That makes the digest a structural
fingerprint — a dropped or renamed bench phase changes it and fails CI,
while a faster machine does not.

Run-journal JSONL files (obs::WriteJournalJsonl; one JSON object per line,
schema "osumac-journal-v1") digest every record line canonically but drop
the provenance field from the header line — it embeds the git version and
the generating phase, which may legitimately differ between two otherwise
identical runs.  The per-cycle digest chains themselves are covered in
full, so CI can require `osumac_sim --cells N --threads 1` and
`--threads 8` to journal bit-identically.

Prints `<sha256>  <path>` per file (shasum-compatible layout).  With
--check A B, exits 1 and prints a diff summary if the two digests differ.
"""
from __future__ import annotations

import argparse
import hashlib
import json
import sys
from pathlib import Path


def is_perf_doc(data) -> bool:
    """A wall-timer trajectory doc: a "phases" array of {name, ...} entries."""
    return isinstance(data, dict) and isinstance(data.get("phases"), list)


def is_journal_path(path: Path) -> bool:
    """A run-journal JSONL (obs::WriteJournalJsonl): one object per line."""
    return path.suffix == ".jsonl"


def journal_lines(path: Path) -> list[str]:
    """Canonical per-line JSON of a journal, provenance dropped."""
    lines = []
    for n, raw in enumerate(path.read_text().splitlines(), start=1):
        if not raw.strip():
            continue
        try:
            obj = json.loads(raw)
        except json.JSONDecodeError as e:
            raise SystemExit(f"{path}:{n}: not JSONL: {e}")
        if isinstance(obj, dict):
            obj.pop("provenance", None)
        lines.append(json.dumps(obj, sort_keys=True, separators=(",", ":")))
    return lines


def canonical_digest(path: Path) -> str:
    if is_journal_path(path):
        canonical = "\n".join(journal_lines(path))
        return hashlib.sha256(canonical.encode()).hexdigest()
    data = json.loads(path.read_text())
    if is_perf_doc(data):
        canonical = json.dumps(sorted(phase_names(path)), separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()
    data.pop("provenance", None)
    canonical = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def point_names(path: Path) -> list[str]:
    data = json.loads(path.read_text())
    return [p.get("name", "?") for p in data.get("points", [])]


def phase_names(path: Path) -> list[str]:
    data = json.loads(path.read_text())
    return [p.get("name", "?") for p in data.get("phases", [])
            if isinstance(p, dict)]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", type=Path)
    parser.add_argument("--check", action="store_true",
                        help="require exactly two files and equal digests")
    args = parser.parse_args(argv)

    digests = {f: canonical_digest(f) for f in args.files}
    for f, d in digests.items():
        print(f"{d}  {f}")

    if args.check:
        if len(args.files) != 2:
            print("--check requires exactly two files", file=sys.stderr)
            return 2
        a, b = args.files
        if digests[a] != digests[b]:
            if is_journal_path(a) and is_journal_path(b):
                lines_a, lines_b = journal_lines(a), journal_lines(b)
                print(f"\njournal digests differ: {a} vs {b}", file=sys.stderr)
                if len(lines_a) != len(lines_b):
                    print(f"  record counts differ: {len(lines_a)} vs "
                          f"{len(lines_b)}", file=sys.stderr)
                for i, (la, lb) in enumerate(zip(lines_a, lines_b), start=1):
                    if la != lb:
                        print(f"  first divergent record (line {i}):\n"
                              f"    A: {la}\n    B: {lb}", file=sys.stderr)
                        break
                return 1
            if is_perf_doc(json.loads(a.read_text())):
                set_a, set_b = set(phase_names(a)), set(phase_names(b))
                print(f"\nbench phase sets differ: {a} vs {b}",
                      file=sys.stderr)
                for label, names in [("only in A", set_a - set_b),
                                     ("only in B", set_b - set_a)]:
                    if names:
                        print(f"  {label}: {', '.join(sorted(names))}",
                              file=sys.stderr)
                return 1
            names_a, names_b = point_names(a), point_names(b)
            print(f"\nsweep digests differ: {a} vs {b}", file=sys.stderr)
            if names_a != names_b:
                print(f"  point lists differ: {len(names_a)} vs "
                      f"{len(names_b)} points", file=sys.stderr)
            else:
                print("  same point list; at least one metric/counter "
                      "value diverged (nondeterministic sweep?)",
                      file=sys.stderr)
            return 1
        print("sweep digests match")
    return 0


if __name__ == "__main__":
    sys.exit(main())
