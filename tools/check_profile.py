#!/usr/bin/env python3
"""Validate a speedscope profile written by obs::WriteSpeedscope.

Usage: check_profile.py PROFILE.json [options]

Options:
  --require-frame NAME   fail unless a frame with this exact name exists
                         (repeatable; the CI profile-smoke job pins the
                         pipeline zones so instrumentation can't silently
                         fall off the hot path)

Checks, in order:
  1. Schema shape: the speedscope $schema URL, shared.frames as a list of
     objects with non-empty string names, and a non-empty profiles array
     whose entries are evented nanosecond profiles with startValue 0.
  2. Event discipline: every event is an O or C with an in-range frame
     index and a non-negative, non-decreasing timestamp; C events close
     the most recently opened frame (proper stack nesting); the stack is
     empty at the end of each profile.
  3. Accounting: no timestamp exceeds endValue, and the last close lands
     exactly at endValue, so the flame's width equals the recorded zone
     total and speedscope renders without dead space.

CI runs this in the profile-smoke job against `osumac_sim --profile`
output so the export format and the zone instrumentation never rot.
"""
import json
import sys

SCHEMA_URL = "https://www.speedscope.app/file-format-schema.json"


def fail(msg):
    print(f"check_profile: FAIL: {msg}")
    sys.exit(1)


def parse_args(argv):
    path = None
    require_frames = []
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg == "--require-frame":
            i += 1
            if i >= len(argv):
                fail("--require-frame needs a NAME")
            require_frames.append(argv[i])
        elif arg.startswith("--"):
            fail(f"unknown option {arg!r}")
        elif path is None:
            path = arg
        else:
            fail(f"unexpected argument {arg!r}")
        i += 1
    if path is None:
        fail("usage: check_profile.py PROFILE.json [--require-frame NAME]...")
    return path, require_frames


def check_events(profile, frame_count):
    name = profile.get("name", "?")
    events = profile.get("events")
    if not isinstance(events, list):
        fail(f"profile {name!r}: missing events array")
    end_value = profile.get("endValue")
    if not isinstance(end_value, int) or end_value < 0:
        fail(f"profile {name!r}: endValue must be a non-negative integer, "
             f"got {end_value!r}")
    stack = []
    last_at = 0
    for pos, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"profile {name!r}: event {pos} is not an object: {ev!r}")
        kind = ev.get("type")
        frame = ev.get("frame")
        at = ev.get("at")
        if kind not in ("O", "C"):
            fail(f"profile {name!r}: event {pos} has type {kind!r}, "
                 "expected 'O' or 'C'")
        if not isinstance(frame, int) or not 0 <= frame < frame_count:
            fail(f"profile {name!r}: event {pos} frame {frame!r} out of "
                 f"range [0, {frame_count})")
        if not isinstance(at, int) or at < 0:
            fail(f"profile {name!r}: event {pos} timestamp {at!r} must be a "
                 "non-negative integer")
        if at < last_at:
            fail(f"profile {name!r}: event {pos} timestamp {at} goes "
                 f"backwards (previous {last_at})")
        last_at = at
        if at > end_value:
            fail(f"profile {name!r}: event {pos} timestamp {at} exceeds "
                 f"endValue {end_value}")
        if kind == "O":
            stack.append(frame)
        else:
            if not stack:
                fail(f"profile {name!r}: event {pos} closes frame {frame} "
                     "with an empty stack")
            if stack[-1] != frame:
                fail(f"profile {name!r}: event {pos} closes frame {frame} "
                     f"but frame {stack[-1]} is open (broken nesting)")
            stack.pop()
    if stack:
        fail(f"profile {name!r}: {len(stack)} frame(s) left open at the end")
    if events and last_at != end_value:
        fail(f"profile {name!r}: last event at {last_at} but endValue is "
             f"{end_value} (flame width != zone total)")
    return len(events)


def main():
    path, require_frames = parse_args(sys.argv[1:])
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    if not isinstance(doc, dict):
        fail(f"{path}: top-level JSON value must be an object")
    if doc.get("$schema") != SCHEMA_URL:
        fail(f"$schema is {doc.get('$schema')!r}, expected {SCHEMA_URL!r}")

    frames = doc.get("shared", {}).get("frames")
    if not isinstance(frames, list):
        fail("missing shared.frames array")
    names = []
    for pos, frame in enumerate(frames):
        if not isinstance(frame, dict) or not isinstance(frame.get("name"), str) \
                or not frame["name"]:
            fail(f"shared.frames[{pos}] must be an object with a non-empty "
                 f"string name: {frame!r}")
        names.append(frame["name"])
    if len(set(names)) != len(names):
        fail("shared.frames contains duplicate names")

    profiles = doc.get("profiles")
    if not isinstance(profiles, list) or not profiles:
        fail("missing or empty profiles array")
    event_count = 0
    for profile in profiles:
        if not isinstance(profile, dict):
            fail(f"profile entry must be an object: {profile!r}")
        if profile.get("type") != "evented":
            fail(f"profile type {profile.get('type')!r}, expected 'evented'")
        if profile.get("unit") != "nanoseconds":
            fail(f"profile unit {profile.get('unit')!r}, expected "
                 "'nanoseconds'")
        if profile.get("startValue") != 0:
            fail(f"profile startValue {profile.get('startValue')!r}, "
                 "expected 0")
        event_count += check_events(profile, len(names))

    missing = [n for n in require_frames if n not in names]
    if missing:
        fail(f"required frame(s) absent: {', '.join(missing)}; "
             f"have: {', '.join(sorted(names))}")

    print(f"check_profile: OK: {path}: {len(names)} frame(s), "
          f"{len(profiles)} profile(s), {event_count} event(s)")


if __name__ == "__main__":
    main()
