#!/usr/bin/env python3
"""Plots the evaluation figures from the CSVs written by make_figures.

Usage:
    ./build/tools/make_figures results/
    python3 tools/plot_figures.py results/        # writes results/*.png

Requires matplotlib (and pandas).  Each plot mirrors one figure of the
ICDCS 2001 paper; see EXPERIMENTS.md for the paper-vs-measured discussion.
"""
import json
import sys
from pathlib import Path

import pandas as pd
import matplotlib

matplotlib.use("Agg")
import matplotlib.pyplot as plt  # noqa: E402


def save(fig, outdir: Path, name: str) -> None:
    fig.tight_layout()
    fig.savefig(outdir / name, dpi=150)
    plt.close(fig)
    print(f"wrote {outdir / name}")


def plot_perf_trajectory(outdir: Path) -> None:
    """Per-phase wall-clock trajectory across make_figures runs.

    make_figures appends one JSONL line per run to bench/history.jsonl
    (provenance + {phase: total_seconds}); this charts each phase's seconds
    against run index so perf drift is visible as a slope, not a surprise.
    Skipped silently when no history has been recorded yet.
    """
    history = Path(__file__).resolve().parent.parent / "bench" / "history.jsonl"
    if not history.is_file():
        print(f"no {history}; skipping perf trajectory")
        return
    runs = []
    for line in history.read_text().splitlines():
        if line.strip():
            runs.append(json.loads(line))
    if not runs:
        print(f"{history} is empty; skipping perf trajectory")
        return
    phases = sorted({name for run in runs for name in run.get("phases", {})})
    fig, ax = plt.subplots(figsize=(7, 4))
    for name in phases:
        ys = [run.get("phases", {}).get(name) for run in runs]
        ax.plot(range(len(runs)), ys, "o-", label=name)
    ax.set_xlabel("run index (bench/history.jsonl order)")
    ax.set_ylabel("phase wall time (s)")
    ax.set_yscale("log")
    ax.set_title(f"make_figures perf trajectory ({len(runs)} run(s))")
    ax.legend(fontsize=7)
    save(fig, outdir, "perf_trajectory.png")


def main() -> None:
    outdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("results")

    # Figure 8: utilization and delay vs load.
    df = pd.read_csv(outdir / "fig8_utilization_delay.csv")
    fig, (ax1, ax2) = plt.subplots(1, 2, figsize=(9, 3.5))
    ax1.plot(df.rho, df.utilization, "o-", label="measured")
    ax1.plot(df.rho, df.rho, "--", color="gray", label="utilization = load")
    ax1.set_xlabel("load index ρ"); ax1.set_ylabel("reverse-link utilization")
    ax1.set_title("Fig. 8(a)"); ax1.legend()
    ax2.plot(df.rho, df.packet_delay_cycles, "o-")
    ax2.set_xlabel("load index ρ"); ax2.set_ylabel("packet delay (cycles)")
    ax2.set_yscale("log"); ax2.set_title("Fig. 8(b)")
    save(fig, outdir, "fig8.png")

    # Figure 9: collision probability and reservation latency.
    df = pd.read_csv(outdir / "fig9_collision_reservation.csv")
    fig, (ax1, ax2) = plt.subplots(1, 2, figsize=(9, 3.5))
    ax1.plot(df.rho, df.collision_probability, "o-")
    ax1.set_xlabel("load index ρ"); ax1.set_ylabel("collision probability")
    ax1.set_title("Fig. 9(a)")
    ax2.plot(df.rho, df.reservation_latency_cycles, "o-")
    ax2.set_xlabel("load index ρ"); ax2.set_ylabel("reservation latency (cycles)")
    ax2.set_title("Fig. 9(b)")
    save(fig, outdir, "fig9.png")

    # Figure 10: control overhead.
    df = pd.read_csv(outdir / "fig10_control_overhead.csv")
    fig, ax = plt.subplots(figsize=(5, 3.5))
    ax.plot(df.rho, df.control_overhead, "o-")
    ax.set_xlabel("load index ρ")
    ax.set_ylabel("reservation packets / data packets")
    ax.set_title("Fig. 10: control overhead")
    save(fig, outdir, "fig10.png")

    # Figure 11: fairness.
    df = pd.read_csv(outdir / "fig11_fairness.csv")
    fig, ax = plt.subplots(figsize=(5, 3.5))
    ax.plot(df.rho, df.fairness_index, "o-")
    ax.axhline(0.99, linestyle="--", color="gray", label="paper: > 0.99")
    ax.set_ylim(0.9, 1.005)
    ax.set_xlabel("load index ρ"); ax.set_ylabel("Jain fairness index")
    ax.set_title("Fig. 11: fairness"); ax.legend()
    save(fig, outdir, "fig11.png")

    # Figure 12(a): second-control-field gain.
    df = pd.read_csv(outdir / "fig12a_cf2_gain.csv")
    fig, (ax1, ax2) = plt.subplots(1, 2, figsize=(9, 3.5))
    ax1.plot(df.rho, 100 * df.cf2_gain, "o-")
    ax1.set_xlabel("load index ρ"); ax1.set_ylabel("last-slot packet share (%)")
    ax1.set_title("Fig. 12(a): 2nd-CF gain (paper: 5–14%)")
    ax2.plot(df.rho, df.utilization_with_cf2, "o-", label="two control fields")
    ax2.plot(df.rho, df.utilization_without_cf2, "s--", label="ablation: one set")
    ax2.set_xlabel("load index ρ"); ax2.set_ylabel("utilization")
    ax2.set_title("ablation"); ax2.legend()
    save(fig, outdir, "fig12a.png")

    # Figure 12(b): dynamic slot adjustment.
    df = pd.read_csv(outdir / "fig12b_slot_usage.csv")
    fig, ax = plt.subplots(figsize=(6, 3.5))
    for gps, dyn, style, label in [
        (1, 1, "o-", "1 GPS user, dynamic"),
        (1, 0, "s--", "1 GPS user, static"),
        (4, 1, "^-", "4 GPS users, dynamic"),
        (4, 0, "v--", "4 GPS users, static"),
    ]:
        sel = df[(df.gps_users == gps) & (df.dynamic == dyn)]
        ax.plot(sel.rho, sel.avg_data_slots_used, style, label=label)
    ax.set_xlabel("load index ρ"); ax.set_ylabel("data slots used / cycle")
    ax.set_title("Fig. 12(b): dynamic slot adjustment"); ax.legend(fontsize=8)
    save(fig, outdir, "fig12b.png")

    plot_perf_trajectory(outdir)

    print("done")


if __name__ == "__main__":
    main()
