// make_figures — regenerates every evaluation figure as CSV files.
//
//   $ ./make_figures [output_dir] [--jobs N] [--mac-matrix] [--no-journal]
//                                                (default: results/, serial)
//
// Builds the full Section-5 spec list up front, executes it on the sweep
// runner (bit-identical at any --jobs), and writes one CSV per figure
// (fig8_utilization_delay.csv, fig9_collision_reservation.csv,
// fig10_control_overhead.csv, fig11_fairness.csv, fig12a_cf2_gain.csv,
// fig12b_slot_usage.csv) plus the robustness grid, the machine-readable
// BENCH_sweeps.json record of every point, and the BENCH_perf.json
// wall-clock trajectory (per-phase timings; schema checked by
// tools/check_perf.py).  Plot the CSVs with tools/plot_figures.py
// (matplotlib) or any spreadsheet.
//
// --mac-matrix additionally runs the head-to-head MAC comparison (every
// policy from mac::KnownMacPolicies() over the load sweep, byte-identical
// scenario specs), writes mac_matrix.csv, appends the points to
// BENCH_sweeps.json and times the sweep as the bench_mac_matrix perf
// phase.  The default run (no flag) emits exactly what it always did,
// byte for byte.
//
// The default run also re-executes the figure sweep with the per-cycle run
// journal enabled (the sweep_journaled perf phase, gated at 1.10x of the
// journal-off sweep by tools/check_perf.py) and writes the merged digest
// chains as RUN_journal.jsonl — the artifact CI's diff-smoke job compares
// across --jobs 1 / --jobs 8 with tools/osumac_diff.py.  --no-journal
// skips that phase (used by the TSan soak, where the run is about races,
// not digests).  The primary sweep itself always runs journal-off, so
// BENCH_sweeps.json stays byte-identical to pre-journal artifacts.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "osumac/osumac.h"

using namespace osumac;

namespace {

std::ofstream Open(const std::filesystem::path& dir, const std::string& name) {
  std::ofstream out(dir / name);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", (dir / name).c_str());
    std::exit(1);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("%s\n", osumac::obs::ProvenanceLine("make_figures", 0).c_str());
  const std::filesystem::path dir =
      argc > 1 && argv[1][0] != '-' ? argv[1] : "results";
  const int jobs = exp::JobsFromArgs(argc, argv, 1);
  bool mac_matrix = false;
  bool no_journal = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--mac-matrix") mac_matrix = true;
    if (std::string(argv[i]) == "--no-journal") no_journal = true;
  }
  std::filesystem::create_directories(dir);
  obs::WallTimerRegistry wall;

  // The full figure workload as one flat spec list: the load sweep with and
  // without CF2 (figs 8-12a), the fig 12(b) arms, and the robustness grid.
  std::vector<exp::ScenarioSpec> specs;
  std::size_t fig12b_begin = 0;
  std::size_t grid_begin = 0;
  {
    obs::ScopedWallTimer timer(wall, "spec_build");
    for (const double rho : exp::LoadSweep()) {
      exp::ScenarioSpec point = exp::LoadPoint(rho);
      specs.push_back(point);
      exp::ScenarioSpec no_cf2 = point;
      no_cf2.name += "_nocf2";
      no_cf2.mac.use_second_control_field = false;
      specs.push_back(no_cf2);
    }
    fig12b_begin = specs.size();
    for (const double rho : exp::LoadSweep()) {
      for (const int gps : {1, 4}) {
        for (const bool dynamic : {true, false}) {
          exp::ScenarioSpec point = exp::LoadPoint(rho);
          point.name +=
              "_gps" + std::to_string(gps) + (dynamic ? "_dyn" : "_static");
          point.gps_users = gps;
          point.mac.dynamic_gps_slots = dynamic;
          specs.push_back(point);
        }
      }
    }
    grid_begin = specs.size();
    for (const int data_users : {5, 8, 11, 14}) {
      for (const int gps_users : {1, 3, 4, 8}) {
        exp::ScenarioSpec point = exp::LoadPoint(0.7);
        point.name = "grid_d" + std::to_string(data_users) + "_g" +
                     std::to_string(gps_users);
        point.data_users = data_users;
        point.gps_users = gps_users;
        point.measure_cycles = 500;
        specs.push_back(point);
      }
    }
  }

  std::printf("running %zu scenario points (jobs=%d)...\n", specs.size(), jobs);
  const obs::Stopwatch sweep_watch;
  std::vector<exp::RunResult> results;
  {
    obs::ScopedWallTimer timer(wall, "sweep");
    results = exp::SweepRunner(jobs).Run(specs);
  }
  const double wall_seconds = sweep_watch.Seconds();

  // The journaled re-run: the same spec list with the per-cycle run journal
  // on (journal_every = 1).  Its wall phase is CI's overhead gate — check
  // tools/check_perf.py: sweep_journaled must stay within 1.10x of the
  // journal-off sweep — and its merged digest chains become
  // RUN_journal.jsonl, the jobs-invariance artifact for diff-smoke.
  std::vector<exp::RunResult> journaled_results;
  if (!no_journal) {
    std::vector<exp::ScenarioSpec> journaled_specs = specs;
    for (exp::ScenarioSpec& s : journaled_specs) s.journal_every = 1;
    std::printf("running %zu journaled points (jobs=%d)...\n",
                journaled_specs.size(), jobs);
    obs::ScopedWallTimer timer(wall, "sweep_journaled");
    journaled_results = exp::SweepRunner(jobs).Run(journaled_specs);
  }

  // The network observability point: a small multi-cell run whose merged
  // SLO digest and backbone counters ride along in BENCH_sweeps.json (the
  // per-point "network" block) and whose wall time is the bench_network
  // phase of BENCH_perf.json.  Deterministic like every other point: a
  // pure function of its spec seed.
  exp::NetworkScenarioSpec net_spec;
  net_spec.name = "bench_network";
  exp::RunResult net_result;
  {
    obs::ScopedWallTimer timer(wall, "bench_network");
    net_result = exp::RunNetworkScenario(net_spec);
  }

  // The metro bench: one 64-cell network scenario run twice — serial, then
  // sharded over 8 worker threads.  The phase pair gates the parallel
  // Network's speedup in CI (tools/check_perf.py tiers the bound by the
  // `cores=` recorded in the perf provenance, so a 1-core artifact host
  // only proves overhead, not speedup) and doubles as a determinism
  // cross-check: both passes journal the measured window and must produce
  // bit-identical signatures, or the artifact write fails.
  exp::NetworkScenarioSpec metro_spec;
  metro_spec.name = "bench_metro";
  metro_spec.cells = 64;
  metro_spec.data_users_per_cell = 4;
  metro_spec.gps_users_per_cell = 1;
  metro_spec.measure_cycles = 60;
  exp::RunResult metro_result;
  std::uint64_t metro_signature[2] = {0, 0};
  for (int pass = 0; pass < 2; ++pass) {
    metro_spec.threads = pass == 0 ? 1 : 8;
    obs::RunJournal journal;  // declared before the run: cells point into it
    obs::ScopedWallTimer timer(
        wall, pass == 0 ? "bench_metro_serial" : "bench_metro_t8");
    exp::NetworkScenarioRun run(metro_spec);
    run.BuildPopulation();
    run.Warmup();
    run.network().AttachJournal(&journal);
    run.Measure();
    metro_result = run.Finish();
    metro_signature[pass] = journal.Signature();
  }
  if (metro_signature[0] != metro_signature[1]) {
    std::fprintf(stderr,
                 "bench_metro: serial/parallel journal signatures diverge "
                 "(%s vs %s); the deterministic barrier is broken\n",
                 obs::JournalHex(metro_signature[0]).c_str(),
                 obs::JournalHex(metro_signature[1]).c_str());
    return 1;
  }
  std::printf("bench_metro signature %s (threads 1 == threads 8)\n",
              obs::JournalHex(metro_signature[0]).c_str());

  // The head-to-head MAC matrix (opt-in): every policy over the same load
  // sweep, so the per-point SLO blocks and figure metrics compare MACs
  // under byte-identical scenarios.
  std::vector<exp::ScenarioSpec> matrix_specs;
  std::vector<exp::RunResult> matrix_results;
  if (mac_matrix) {
    for (const std::string& policy : mac::KnownMacPolicies()) {
      for (const double rho : exp::LoadSweep()) {
        exp::ScenarioSpec point = exp::LoadPoint(rho);
        point.name = "mac_" + policy + "_" + point.name;
        point.mac_policy = policy;
        matrix_specs.push_back(point);
      }
    }
    std::printf("running %zu mac-matrix points (jobs=%d)...\n",
                matrix_specs.size(), jobs);
    obs::ScopedWallTimer timer(wall, "bench_mac_matrix");
    matrix_results = exp::SweepRunner(jobs).Run(matrix_specs);
  }

  const obs::Stopwatch csv_watch;
  auto fig8 = Open(dir, "fig8_utilization_delay.csv");
  fig8 << "rho,offered,utilization,packet_delay_cycles,message_delay_cycles,"
          "p95_delay,drop_rate\n";
  auto fig9 = Open(dir, "fig9_collision_reservation.csv");
  fig9 << "rho,collision_probability,reservation_latency_cycles\n";
  auto fig10 = Open(dir, "fig10_control_overhead.csv");
  fig10 << "rho,control_overhead,reservation_packets,data_packets\n";
  auto fig11 = Open(dir, "fig11_fairness.csv");
  fig11 << "rho,fairness_index\n";
  auto fig12a = Open(dir, "fig12a_cf2_gain.csv");
  fig12a << "rho,cf2_gain,utilization_with_cf2,utilization_without_cf2\n";

  std::size_t next = 0;
  for (const double rho : exp::LoadSweep()) {
    const exp::RunResult& r = results[next++];
    const exp::RunResult& r_no = results[next++];

    fig8 << rho << ',' << r.offered_load << ',' << r.figure.utilization << ','
         << r.figure.mean_packet_delay_cycles << ','
         << r.figure.mean_message_delay_cycles << ','
         << r.figure.p95_packet_delay_cycles << ',' << r.figure.message_drop_rate
         << '\n';
    fig9 << rho << ',' << r.figure.collision_probability << ','
         << r.figure.mean_reservation_latency << '\n';
    fig10 << rho << ',' << r.figure.control_overhead << ','
          << r.bs.reservation_packets_received << ',' << r.bs.data_packets_received
          << '\n';
    fig11 << rho << ',' << r.figure.fairness_index << '\n';
    fig12a << rho << ',' << r.figure.second_cf_gain << ',' << r.figure.utilization
           << ',' << r_no.figure.utilization << '\n';
  }

  auto fig12b = Open(dir, "fig12b_slot_usage.csv");
  fig12b << "rho,gps_users,dynamic,avg_data_slots_used\n";
  next = fig12b_begin;
  for (const double rho : exp::LoadSweep()) {
    for (const int gps : {1, 4}) {
      for (const bool dynamic : {true, false}) {
        fig12b << rho << ',' << gps << ',' << (dynamic ? 1 : 0) << ','
               << results[next++].figure.avg_data_slots_used << '\n';
      }
    }
  }

  auto grid = Open(dir, "robustness_grid.csv");
  grid << "data_users,gps_users,utilization,packet_delay_cycles,fairness,"
          "gps_max_access_s\n";
  next = grid_begin;
  for (const int data_users : {5, 8, 11, 14}) {
    for (const int gps_users : {1, 3, 4, 8}) {
      const exp::RunResult& r = results[next++];
      grid << data_users << ',' << gps_users << ',' << r.figure.utilization << ','
           << r.figure.mean_packet_delay_cycles << ',' << r.figure.fairness_index
           << ',' << r.figure.gps_access_delay_max_s << '\n';
    }
  }

  if (mac_matrix) {
    auto matrix = Open(dir, "mac_matrix.csv");
    matrix << "policy,rho,offered,utilization,gps_miss_rate,gps_p99_s,"
              "fairness,drop_rate\n";
    next = 0;
    for (const std::string& policy : mac::KnownMacPolicies()) {
      for (const double rho : exp::LoadSweep()) {
        const exp::RunResult& r = matrix_results[next++];
        const obs::SloClassSummary& gps =
            r.slo[static_cast<std::size_t>(obs::SloClass::kGpsAccess)];
        const double miss_rate =
            gps.count > 0
                ? static_cast<double>(gps.misses) / static_cast<double>(gps.count)
                : 0.0;
        matrix << policy << ',' << rho << ',' << r.offered_load << ','
               << r.figure.utilization << ',' << miss_rate << ',' << gps.p99
               << ',' << r.figure.fairness_index << ','
               << r.figure.message_drop_rate << '\n';
      }
    }
  }

  wall.timer("write_csv").Add(csv_watch.Seconds());

  {
    obs::ScopedWallTimer timer(wall, "write_sweeps_json");
    // The network point joins the emitted list here (after the figure CSVs,
    // which index `results` by position) under a placeholder spec that
    // mirrors the network run's shape.
    specs.insert(specs.end(), matrix_specs.begin(), matrix_specs.end());
    results.insert(results.end(), matrix_results.begin(), matrix_results.end());
    exp::ScenarioSpec net_placeholder;
    net_placeholder.name = net_spec.name;
    net_placeholder.seed = net_spec.seed;
    net_placeholder.workload.rho = 0.0;
    net_placeholder.data_users = net_spec.data_users_per_cell;
    net_placeholder.gps_users = net_spec.gps_users_per_cell;
    net_placeholder.warmup_cycles = net_spec.warmup_cycles;
    net_placeholder.measure_cycles = net_spec.measure_cycles;
    specs.push_back(net_placeholder);
    results.push_back(net_result);
    exp::ScenarioSpec metro_placeholder;
    metro_placeholder.name = metro_spec.name;
    metro_placeholder.seed = metro_spec.seed;
    metro_placeholder.workload.rho = 0.0;
    metro_placeholder.data_users = metro_spec.data_users_per_cell;
    metro_placeholder.gps_users = metro_spec.gps_users_per_cell;
    metro_placeholder.warmup_cycles = metro_spec.warmup_cycles;
    metro_placeholder.measure_cycles = metro_spec.measure_cycles;
    specs.push_back(metro_placeholder);
    results.push_back(metro_result);
    auto sweeps = Open(dir, "BENCH_sweeps.json");
    exp::WriteSweepJson(sweeps, "make_figures", jobs, wall_seconds, specs,
                        results);
  }

  // The merged run journal: every journaled point contributes its digest
  // chain under its point index as the journal "cell" id, so one JSONL
  // carries the whole sweep and osumac_diff.py can name both the divergent
  // cycle and the divergent point.  The provenance deliberately omits the
  // job count: two runs of the same build at different --jobs must produce
  // byte-identical files.
  if (!no_journal) {
    obs::RunJournal merged;
    for (std::size_t i = 0; i < journaled_results.size(); ++i) {
      const std::shared_ptr<const obs::RunJournal>& j =
          journaled_results[i].journal;
      if (j == nullptr || j->cells().empty()) continue;
      obs::CellJournal& cj = merged.AddCell(static_cast<int>(i));
      for (const obs::JournalRecord& rec : j->cells().front()->records()) {
        cj.Append(rec);
      }
    }
    const std::string journal_path = (dir / "RUN_journal.jsonl").string();
    if (!obs::WriteJournalJsonl(
            merged, journal_path,
            obs::ProvenanceLine("make_figures", 0,
                                "phase=sweep_journaled every=1"))) {
      std::fprintf(stderr, "cannot open %s\n", journal_path.c_str());
      return 1;
    }
    std::printf("journal signature %s -> %s\n",
                obs::JournalHex(merged.Signature()).c_str(),
                journal_path.c_str());
  }

  // The perf trajectory: one phase entry per stage above, %.17g seconds.
  // tools/check_perf.py validates the schema and phase coverage in CI.
  // `cores=` records the host's parallelism so the bench_metro speedup
  // gate can tier its bound: a 1-core artifact host cannot demonstrate a
  // 3x speedup, only bounded overhead.
  auto perf = Open(dir, "BENCH_perf.json");
  obs::WriteWallTimersJson(
      perf, wall,
      obs::ProvenanceLine("make_figures", 0,
                          "jobs=" + std::to_string(jobs) +
                              " points=" + std::to_string(specs.size()) +
                              " cores=" + std::to_string(exp::ResolveJobs(0))));

  // Perf-trajectory history: append this run's per-phase wall-clocks to
  // bench/history.jsonl when running from a repo checkout.  The marker is
  // bench/CMakeLists.txt, not the bare directory — a CMake build tree has
  // its own bench/ binary dir, and history must not leak into it.  One
  // append-only JSONL line per run; tools/plot_figures.py charts the
  // trajectory.
  if (std::filesystem::exists("bench/CMakeLists.txt")) {
    std::ofstream history("bench/history.jsonl", std::ios::app);
    if (history) {
      history << "{\"provenance\": \""
              << obs::ProvenanceLine("make_figures", 0,
                                     "jobs=" + std::to_string(jobs))
              << "\", \"phases\": {";
      bool first = true;
      for (const auto& [name, stats] : wall.timers()) {
        char seconds[40];
        std::snprintf(seconds, sizeof seconds, "%.17g", stats.sum());
        history << (first ? "" : ", ") << '"' << name << "\": " << seconds;
        first = false;
      }
      history << "}}\n";
      std::printf("appended perf history -> bench/history.jsonl\n");
    }
  }

  std::printf("wrote CSVs + BENCH_sweeps.json + BENCH_perf.json to %s (%.1f s) "
              "— plot with tools/plot_figures.py\n",
              dir.c_str(), wall_seconds);
  return 0;
}
