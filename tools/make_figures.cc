// make_figures — regenerates every evaluation figure as CSV files.
//
//   $ ./make_figures [output_dir]     (default: results/)
//
// Runs the Section-5 load sweep once and writes one CSV per figure
// (fig8_utilization_delay.csv, fig9_collision_reservation.csv,
// fig10_control_overhead.csv, fig11_fairness.csv, fig12a_cf2_gain.csv,
// fig12b_slot_usage.csv) plus the robustness grid.  Plot them with
// tools/plot_figures.py (matplotlib) or any spreadsheet.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "../bench/sweep_common.h"

using namespace osumac;
using namespace osumac::bench;

namespace {

std::ofstream Open(const std::filesystem::path& dir, const std::string& name) {
  std::ofstream out(dir / name);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", (dir / name).c_str());
    std::exit(1);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("%s\n", osumac::obs::ProvenanceLine("make_figures", 0).c_str());
  const std::filesystem::path dir = argc > 1 ? argv[1] : "results";
  std::filesystem::create_directories(dir);

  // One pass over the load sweep feeds figures 8-12(a).
  auto fig8 = Open(dir, "fig8_utilization_delay.csv");
  fig8 << "rho,offered,utilization,packet_delay_cycles,message_delay_cycles,"
          "p95_delay,drop_rate\n";
  auto fig9 = Open(dir, "fig9_collision_reservation.csv");
  fig9 << "rho,collision_probability,reservation_latency_cycles\n";
  auto fig10 = Open(dir, "fig10_control_overhead.csv");
  fig10 << "rho,control_overhead,reservation_packets,data_packets\n";
  auto fig11 = Open(dir, "fig11_fairness.csv");
  fig11 << "rho,fairness_index\n";
  auto fig12a = Open(dir, "fig12a_cf2_gain.csv");
  fig12a << "rho,cf2_gain,utilization_with_cf2,utilization_without_cf2\n";

  std::printf("load sweep (figs 8-12a)...\n");
  for (double rho : LoadSweep()) {
    SweepPoint point;
    point.rho = rho;
    const SweepResult r = RunLoadPoint(point);
    SweepPoint no_cf2 = point;
    no_cf2.mac.use_second_control_field = false;
    const SweepResult r_no = RunLoadPoint(no_cf2);

    fig8 << rho << ',' << r.offered_load << ',' << r.figure.utilization << ','
         << r.figure.mean_packet_delay_cycles << ','
         << r.figure.mean_message_delay_cycles << ','
         << r.figure.p95_packet_delay_cycles << ',' << r.figure.message_drop_rate
         << '\n';
    fig9 << rho << ',' << r.figure.collision_probability << ','
         << r.figure.mean_reservation_latency << '\n';
    fig10 << rho << ',' << r.figure.control_overhead << ','
          << r.bs.reservation_packets_received << ',' << r.bs.data_packets_received
          << '\n';
    fig11 << rho << ',' << r.figure.fairness_index << '\n';
    fig12a << rho << ',' << r.figure.second_cf_gain << ',' << r.figure.utilization
           << ',' << r_no.figure.utilization << '\n';
  }

  std::printf("figure 12(b) arms...\n");
  auto fig12b = Open(dir, "fig12b_slot_usage.csv");
  fig12b << "rho,gps_users,dynamic,avg_data_slots_used\n";
  for (double rho : LoadSweep()) {
    for (int gps : {1, 4}) {
      for (bool dynamic : {true, false}) {
        SweepPoint point;
        point.rho = rho;
        point.gps_users = gps;
        point.mac.dynamic_gps_slots = dynamic;
        const SweepResult r = RunLoadPoint(point);
        fig12b << rho << ',' << gps << ',' << (dynamic ? 1 : 0) << ','
               << r.figure.avg_data_slots_used << '\n';
      }
    }
  }

  std::printf("robustness grid...\n");
  auto grid = Open(dir, "robustness_grid.csv");
  grid << "data_users,gps_users,utilization,packet_delay_cycles,fairness,"
          "gps_max_access_s\n";
  for (int data_users : {5, 8, 11, 14}) {
    for (int gps_users : {1, 3, 4, 8}) {
      SweepPoint point;
      point.rho = 0.7;
      point.data_users = data_users;
      point.gps_users = gps_users;
      point.measure_cycles = 500;
      const SweepResult r = RunLoadPoint(point);
      grid << data_users << ',' << gps_users << ',' << r.figure.utilization << ','
           << r.figure.mean_packet_delay_cycles << ',' << r.figure.fairness_index
           << ',' << r.figure.gps_access_delay_max_s << '\n';
    }
  }

  std::printf("wrote CSVs to %s — plot with tools/plot_figures.py\n", dir.c_str());
  return 0;
}
