#!/usr/bin/env python3
"""Project-specific static checks for the OSU-MAC codebase.

Run from the repository root (CI runs it on every push):

    python3 tools/lint.py [--json FILE] [--sarif FILE] [--list-rules]

This is a thin launcher for the ``tools/osumac_lint`` framework: one module
per rule under ``tools/osumac_lint/rules/``, a shared comment/string-aware
scanner, and a waiver ledger (``tools/osumac_lint/waivers.json``) that every
inline ``lint: allow-<rule>`` comment must reconcile against.  The rule
catalogue, the waiver policy, and the rest of the static-analysis stack are
documented in docs/STATIC_ANALYSIS.md; ``--list-rules`` prints the live
rule set.
"""
from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from osumac_lint.cli import main  # noqa: E402  (path setup must run first)

if __name__ == "__main__":
    sys.exit(main())
