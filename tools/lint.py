#!/usr/bin/env python3
"""Project-specific static checks for the OSU-MAC codebase.

Run from the repository root (CI runs it on every push):

    python3 tools/lint.py

Rules (each exists because a real failure mode motivated it):

  bare-assert      No assert() in src/: the default RelWithDebInfo build
                   defines NDEBUG, which silently compiles assert() out.
                   Use OSUMAC_CHECK* (always-on) or OSUMAC_DCHECK* (hot
                   paths) from common/check.h.
  float-tick       No float/double arithmetic on Tick values in the
                   scheduling layers (src/mac, src/sim, src/phy).  All slot
                   geometry is exact in integer ticks; one float sneaking in
                   can perturb slot-overlap or guard comparisons.  ToSeconds()
                   on the same line is exempt (reporting), as is a line
                   carrying a `lint: allow-float-tick` waiver comment.
  nondeterminism   No rand()/srand()/time() in src/: the simulator must be
                   deterministic and seeded (use common/rng.h; pass sim time
                   explicitly).
  checks-always-on No NDEBUG gating around the OSUMAC_CHECK* definitions in
                   common/check.h: the always-on macros must stay always-on
                   (OSUMAC_DCHECK* are the sanctioned debug-only twins).
  raw-sanitize     CI must select sanitizers via -DOSUMAC_SANITIZE=...
                   instead of injecting raw -fsanitize flags, so local
                   reproduction is one documented cmake option.
  raw-stdout       No printf/std::cout/std::cerr/puts in src/: library code
                   reports through return values, the metrics registry, the
                   event trace, or ostream& parameters the caller supplies.
                   Exempt: src/obs/ (the sinks ARE the output path),
                   src/common/logging.cc (the logging backend) and
                   src/metrics/experiment.cc (the table printer).  Tools,
                   benches and tests print freely.
  bench-direct-cell No direct mac::Cell / mac::Network construction in
                   bench/: benches build populations through the scenario
                   engine (exp::ScenarioSpec + SweepRunner / ScenarioRun) so
                   every benchmark point is declarative, seed-derived and
                   sweep-parallel.  Multi-cell/extension harnesses the
                   engine does not model (e.g. MultiChannelCell) are not
                   affected.
  hot-alloc        No std::vector construction in the per-slot hot paths
                   (src/fec/reed_solomon.cc, src/phy/channel.cc,
                   src/phy/error_model.cc): the sweep fast path works on
                   caller-provided scratch (ChannelScratch, *Into APIs) so
                   no slot allocates.  Setup-time code (constructors, the
                   allocating convenience wrappers) carries a
                   `lint: allow-hot-alloc` waiver comment.
  raw-latency      No ad-hoc latency arithmetic (+/-) on raw obs event
                   timestamps (`.tick`, `.span.begin`, `.span.end`) in src/
                   outside src/obs/: delay and gap measurement goes through
                   the span reducer / SloMonitor API so every latency number
                   shares one definition of "when".  Plain reads and
                   assignments of those fields (e.g. the auditor stamping
                   AuditViolation.tick) are fine; a line carrying a
                   `lint: allow-raw-latency` waiver comment is exempt.
"""
from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

findings: list[str] = []


def finding(path: Path, lineno: int, rule: str, message: str) -> None:
    findings.append(f"{path.relative_to(REPO)}:{lineno}: [{rule}] {message}")


def strip_comments_and_strings(line: str) -> str:
    """Removes // comments and string literal contents (keeps the quotes)."""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    line = re.sub(r"//.*", "", line)
    return line


def source_files(*roots: str, suffixes: tuple[str, ...] = (".cc", ".h")) -> list[Path]:
    out: list[Path] = []
    for root in roots:
        out.extend(p for p in (REPO / root).rglob("*") if p.suffix in suffixes)
    return sorted(out)


BARE_ASSERT = re.compile(r"(?<![\w_])assert\s*\(")
NONDETERMINISM = re.compile(r"(?<![\w_.:])(?:std::)?(rand|srand|time)\s*\(")
# A floating-point ingredient: the keywords, a floating literal, or a
# to-double cast.
FLOAT_USE = re.compile(
    r"\b(?:double|float)\b|(?<![\w.])\d+\.\d+|static_cast<\s*(?:double|float)\s*>")
# A tick-typed quantity on the same line.
TICK_USE = re.compile(r"\bTick\b|\b[A-Za-z_]*[Tt]icks?\b")
WAIVER = re.compile(r"lint:\s*allow-float-tick")


def check_bare_assert() -> None:
    for path in source_files("src"):
        for lineno, raw in enumerate(path.read_text().splitlines(), 1):
            line = strip_comments_and_strings(raw)
            if "static_assert" in line:
                line = line.replace("static_assert", "")
            if BARE_ASSERT.search(line):
                finding(path, lineno, "bare-assert",
                        "assert() vanishes under NDEBUG; use OSUMAC_CHECK or "
                        "OSUMAC_DCHECK (common/check.h)")


def check_float_tick() -> None:
    for path in source_files("src/mac", "src/sim", "src/phy"):
        for lineno, raw in enumerate(path.read_text().splitlines(), 1):
            if WAIVER.search(raw):
                continue
            line = strip_comments_and_strings(raw)
            if "ToSeconds(" in line:
                continue  # the one sanctioned Tick -> float bridge
            if FLOAT_USE.search(line) and TICK_USE.search(line):
                finding(path, lineno, "float-tick",
                        "float arithmetic on tick values; slot geometry must "
                        "stay in exact integer ticks (use ToSeconds() only "
                        "for reporting)")


def check_nondeterminism() -> None:
    for path in source_files("src"):
        for lineno, raw in enumerate(path.read_text().splitlines(), 1):
            line = strip_comments_and_strings(raw)
            m = NONDETERMINISM.search(line)
            if m:
                finding(path, lineno, "nondeterminism",
                        f"{m.group(1)}() breaks deterministic replay; use "
                        "common/rng.h / simulation time")


def check_checks_always_on() -> None:
    path = REPO / "src/common/check.h"
    depth_gated = 0  # depth of enclosing NDEBUG-conditional blocks
    saw_check_define = False
    for lineno, raw in enumerate(path.read_text().splitlines(), 1):
        stripped = raw.strip()
        if re.match(r"#\s*if(def|ndef)?\b", stripped):
            depth_gated += 1 if "NDEBUG" in stripped or depth_gated else 0
        elif re.match(r"#\s*endif\b", stripped) and depth_gated:
            depth_gated -= 1
        if re.match(r"#\s*define\s+OSUMAC_CHECK\b|#\s*define\s+OSUMAC_CHECK_", stripped):
            saw_check_define = True
            if depth_gated:
                finding(path, lineno, "checks-always-on",
                        "OSUMAC_CHECK* defined inside an NDEBUG conditional; "
                        "the always-on macros must fire in every build type")
        # kDChecksEnabled is the only sanctioned NDEBUG use: a constant the
        # optimizer folds, keeping DCHECK conditions type-checked everywhere.
    if not saw_check_define:
        finding(path, 1, "checks-always-on", "OSUMAC_CHECK definition not found")


RAW_STDOUT = re.compile(
    r"(?<![\w_.:])(?:std::)?(?:f?printf|puts|putchar)\s*\(|std::c(?:out|err)\b")
RAW_STDOUT_EXEMPT = ("src/obs/", "src/common/logging.cc", "src/metrics/experiment.cc")


def check_raw_stdout() -> None:
    for path in source_files("src"):
        rel = path.relative_to(REPO).as_posix()
        if any(rel.startswith(e) for e in RAW_STDOUT_EXEMPT):
            continue
        for lineno, raw in enumerate(path.read_text().splitlines(), 1):
            line = strip_comments_and_strings(raw)
            if RAW_STDOUT.search(line):
                finding(path, lineno, "raw-stdout",
                        "direct stdout/stderr output in library code; report "
                        "through the obs sinks, the metrics registry, or an "
                        "ostream& the caller supplies")


# A Cell/Network object built directly: stack declaration, make_unique, or
# new-expression.  \b keeps MultiChannelCell/CellConfig out of scope.
DIRECT_CELL = re.compile(
    r"(?:^|[^\w:])(?:mac::)?\b(Cell|Network)\s+[A-Za-z_]\w*\s*[({]"
    r"|make_unique<\s*(?:mac::)?(Cell|Network)\s*>"
    r"|new\s+(?:mac::)?(Cell|Network)\s*[({]")


def check_bench_direct_cell() -> None:
    for path in source_files("bench"):
        for lineno, raw in enumerate(path.read_text().splitlines(), 1):
            line = strip_comments_and_strings(raw)
            if DIRECT_CELL.search(line):
                finding(path, lineno, "bench-direct-cell",
                        "benches must drive Cell/Network through the scenario "
                        "engine (exp::ScenarioSpec + SweepRunner/ScenarioRun), "
                        "not construct them directly")


# Files whose per-slot loops the sweep spends its wall-clock in; building a
# std::vector there reintroduces the per-slot allocations the ChannelScratch /
# *Into refactor removed.
HOT_ALLOC_FILES = ("src/fec/reed_solomon.cc", "src/phy/channel.cc",
                   "src/phy/error_model.cc")
HOT_ALLOC = re.compile(r"\bstd::vector\s*<")
HOT_ALLOC_WAIVER = re.compile(r"lint:\s*allow-hot-alloc")


def _constructs_vector(line: str) -> bool:
    """True if the line constructs a std::vector object (a declaration or a
    temporary) rather than naming the type as a reference, pointer, or the
    return type of an out-of-line qualified function definition."""
    for m in HOT_ALLOC.finditer(line):
        depth = 1
        i = m.end()
        while i < len(line) and depth > 0:
            if line[i] == "<":
                depth += 1
            elif line[i] == ">":
                depth -= 1
            i += 1
        if depth > 0:
            return True  # type spans lines; assume the worst
        rest = line[i:].lstrip()
        if rest[:1] in ("&", "*"):
            continue  # reference/pointer parameter: no allocation
        if rest[:1] in (">", ","):
            continue  # nested inside an enclosing template argument list
        name = re.match(r"[A-Za-z_]\w*", rest)
        if name and rest[name.end():].startswith("::"):
            continue  # qualified return type of a function definition
        return True
    return False


def check_hot_alloc() -> None:
    for rel in HOT_ALLOC_FILES:
        path = REPO / rel
        if not path.exists():
            continue
        for lineno, raw in enumerate(path.read_text().splitlines(), 1):
            if HOT_ALLOC_WAIVER.search(raw):
                continue
            line = strip_comments_and_strings(raw)
            if _constructs_vector(line):
                finding(path, lineno, "hot-alloc",
                        "std::vector constructed in a phy/fec hot path; use "
                        "the caller-provided scratch (ChannelScratch / *Into "
                        "APIs) or add a `lint: allow-hot-alloc` waiver for "
                        "setup-time code")


# An event timestamp field with +/- arithmetic touching it on either side.
# Requiring the operator adjacent keeps plain reads and assignments
# (`violation.tick = ev.tick;`) out of scope.
RAW_LATENCY = re.compile(
    r"\.(?:tick|span\.(?:begin|end))\b\s*[-+][^-+=]"   # ev.tick - x
    r"|[-+]\s*[\w\]\)]+(?:\.\w+)*\.(?:tick|span\.(?:begin|end))\b")  # x - ev.tick
LATENCY_WAIVER = re.compile(r"lint:\s*allow-raw-latency")


def check_raw_latency() -> None:
    for path in source_files("src"):
        rel = path.relative_to(REPO).as_posix()
        if rel.startswith("src/obs/"):
            continue  # the span/SLO reducers ARE the sanctioned arithmetic
        for lineno, raw in enumerate(path.read_text().splitlines(), 1):
            if LATENCY_WAIVER.search(raw):
                continue
            line = strip_comments_and_strings(raw)
            if RAW_LATENCY.search(line):
                finding(path, lineno, "raw-latency",
                        "latency arithmetic on raw event timestamps; compute "
                        "delays through the span reducer or SloMonitor "
                        "(src/obs) so every latency shares one definition")


def check_raw_sanitize() -> None:
    path = REPO / ".github/workflows/ci.yml"
    for lineno, raw in enumerate(path.read_text().splitlines(), 1):
        if "-fsanitize" in raw:
            finding(path, lineno, "raw-sanitize",
                    "select sanitizers with -DOSUMAC_SANITIZE=... so the CI "
                    "configuration is reproducible locally")


def main() -> int:
    check_bare_assert()
    check_float_tick()
    check_nondeterminism()
    check_checks_always_on()
    check_raw_stdout()
    check_raw_latency()
    check_raw_sanitize()
    check_bench_direct_cell()
    check_hot_alloc()
    if findings:
        print("\n".join(findings))
        print(f"\nlint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
