#!/usr/bin/env python3
"""Validates a Chrome trace-event JSON file produced by `osumac_sim --trace`.

    python3 tools/check_trace.py out.json

Checks (CI runs this on the trace-smoke artifact):
  - the file is valid JSON with a non-empty `traceEvents` array;
  - every event carries the required trace-event keys for its phase
    (`X` complete spans need ts/dur, `i` instants need ts, `M` metadata
    needs args.name);
  - durations are non-negative and emission ticks (args.tick) never go
    backwards (events are recorded in simulation order; span start times may
    legitimately precede earlier events' ends, e.g. bursts announced at CF1
    delivery time carry airtime later in the cycle);
  - the ring buffer did not drop events (`otherData.dropped == 0`), since a
    wrapped trace reconstructs only a suffix of the run;
  - the provenance line is present, so the artifact says what produced it.

Exit status 0 on success, 1 with a diagnostic on the first failure.
"""
from __future__ import annotations

import json
import sys


def fail(message: str) -> None:
    print(f"check_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 1
    path = sys.argv[1]
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")

    spans = instants = 0
    last_tick = float("-inf")
    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph not in ("X", "i", "M"):
            fail(f"event {i}: unexpected phase {ph!r}")
        if "name" not in e or "pid" not in e or "tid" not in e:
            fail(f"event {i}: missing name/pid/tid")
        if ph == "M":
            if e.get("name") == "thread_name" and "name" not in e.get("args", {}):
                fail(f"event {i}: thread_name metadata without args.name")
            continue
        ts = e.get("ts")
        if not isinstance(ts, (int, float)):
            fail(f"event {i}: missing ts")
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"event {i}: complete span with bad dur {dur!r}")
            spans += 1
        else:
            instants += 1
        tick = e.get("args", {}).get("tick")
        if tick is not None:
            if tick < last_tick:
                fail(f"event {i}: emission tick went backwards "
                     f"({tick} < {last_tick})")
            last_tick = tick

    other = doc.get("otherData", {})
    if other.get("dropped", 0) != 0:
        fail(f"ring buffer dropped {other['dropped']} events (trace truncated)")
    if "provenance" not in other:
        fail("otherData.provenance missing")

    print(f"check_trace: OK: {spans} spans, {instants} instants, "
          f"{other.get('recorded', '?')} recorded, 0 dropped")
    return 0


if __name__ == "__main__":
    sys.exit(main())
