#!/usr/bin/env python3
"""Validates observability artifacts produced by osumac_sim.

    python3 tools/check_trace.py out.json        # Chrome trace (--trace)
    python3 tools/check_trace.py --flight DIR    # flight dump (--flight-dir)

Chrome-trace mode (CI runs this on the trace-smoke artifact) checks:
  - the file is valid JSON with a non-empty `traceEvents` array;
  - every event carries the required trace-event keys for its phase
    (`X` complete spans need ts/dur, `i` instants need ts, `M` metadata
    needs args.name, async lifecycle spans `b`/`n`/`e` need ts/id);
  - per lifecycle id: at most one `b` (birth), nothing after the terminal
    `e`, and timestamps never go backwards.  Spans whose birth predates the
    trace attach point ("truncated-head": `n`/`e` with no `b`) and spans
    still open at the end of the window are tolerated and counted — the
    trace is a ring over a window, not the whole run;
  - durations are non-negative and emission ticks (args.tick) never go
    backwards globally;
  - the ring buffer did not drop events (`otherData.dropped == 0`), since a
    wrapped trace reconstructs only a suffix of the run;
  - the provenance line is present, so the artifact says what produced it.

Flight mode replays DIR/events.jsonl (the obs JSONL schema), applies the
same per-lifecycle structural rules, then reconstructs every packet
lifecycle stage by stage.  For GPS lifecycles it recomputes the
inter-delivery gap per node against the paper's 4 s budget and, for each
blown gap, names the dropped report(s) inside it and the stage transition
that failed — the post-mortem the dump exists for.

Exit status 0 on success, 1 with a diagnostic on the first failure.
"""
from __future__ import annotations

import json
import os
import re
import sys

GPS_BUDGET_S = 4.0
TICKS_PER_SECOND = 48000

STAGE_NAMES = {
    0: "generated", 1: "queued", 2: "reservation_tx", 3: "grant_rx",
    4: "slot_tx", 5: "delivered", 6: "acked", 7: "retry", 8: "erasure",
    9: "dropped",
}
DROP_CODES = {0: "superseded", 1: "decode_failure", 2: "collision",
              3: "power_off"}
CLASS_NAMES = {0: "data", 1: "gps"}
STAGE_DROPPED = 9
STAGE_DELIVERED = 5
STAGE_ACKED = 6
CLASS_GPS = 1


def fail(message: str) -> None:
    print(f"check_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def need(ev: dict, key: str, where: str):
    """Fetch a required event field, failing with a diagnostic (not a
    KeyError traceback) when a malformed producer omitted it."""
    if not isinstance(ev, dict):
        fail(f"{where}: event is not an object: {ev!r}")
    if key not in ev:
        fail(f"{where}: event missing required field {key!r}: {ev}")
    return ev[key]


def terminal(stage: int, cls: int) -> bool:
    if stage == STAGE_DROPPED:
        return True
    return stage == (STAGE_DELIVERED if cls == CLASS_GPS else STAGE_ACKED)


class SpanTracker:
    """Per-lifecycle-id structural rules shared by both modes."""

    def __init__(self) -> None:
        self.states: dict = {}  # id -> {"born", "done", "last_ts"}

    def observe(self, span_id, is_birth: bool, is_terminal: bool, ts,
                where: str) -> None:
        st = self.states.setdefault(
            span_id, {"born": False, "done": False, "last_ts": None})
        if st["done"]:
            fail(f"{where}: lifecycle {span_id} has events after its "
                 f"terminal stage")
        if is_birth:
            if st["born"]:
                fail(f"{where}: duplicate birth for lifecycle {span_id}")
            st["born"] = True
        if st["last_ts"] is not None and ts < st["last_ts"]:
            fail(f"{where}: lifecycle {span_id} timestamps went backwards "
                 f"({ts} < {st['last_ts']})")
        st["last_ts"] = ts
        if is_terminal:
            st["done"] = True

    def summary(self) -> tuple:
        complete = truncated = opened = 0
        for st in self.states.values():
            if st["born"] and st["done"]:
                complete += 1
            elif st["done"]:
                truncated += 1  # head predates the trace window
            else:
                opened += 1  # still in flight at window end
        return complete, truncated, opened


def check_chrome_trace(path: str) -> int:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    if not isinstance(doc, dict):
        fail(f"{path}: top-level JSON value must be an object, "
             f"got {type(doc).__name__}")

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")

    spans = instants = async_events = 0
    tracker = SpanTracker()
    last_tick = float("-inf")
    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph not in ("X", "i", "M", "b", "n", "e"):
            fail(f"event {i}: unexpected phase {ph!r}")
        if "name" not in e or "pid" not in e or "tid" not in e:
            fail(f"event {i}: missing name/pid/tid")
        if ph == "M":
            if e.get("name") == "thread_name" and "name" not in e.get("args", {}):
                fail(f"event {i}: thread_name metadata without args.name")
            continue
        ts = e.get("ts")
        if not isinstance(ts, (int, float)):
            fail(f"event {i}: missing ts")
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"event {i}: complete span with bad dur {dur!r}")
            spans += 1
        elif ph in ("b", "n", "e"):
            span_id = e.get("id")
            if not span_id:
                fail(f"event {i}: async event without id")
            args = e.get("args", {})
            stage = args.get("a0")
            cls = args.get("a3")
            if stage is None or cls is None:
                fail(f"event {i}: lifecycle event without a0/a3 args")
            # The emitter derives the phase from the stage; both must agree.
            expect = "b" if stage == 0 else ("e" if terminal(stage, cls) else "n")
            if ph != expect:
                fail(f"event {i}: stage {STAGE_NAMES.get(stage, stage)} "
                     f"emitted as ph={ph!r}, expected {expect!r}")
            tracker.observe(span_id, ph == "b", ph == "e", ts, f"event {i}")
            async_events += 1
        else:
            instants += 1
        tick = e.get("args", {}).get("tick")
        if tick is not None:
            if tick < last_tick:
                fail(f"event {i}: emission tick went backwards "
                     f"({tick} < {last_tick})")
            last_tick = tick

    other = doc.get("otherData", {})
    if other.get("dropped", 0) != 0:
        fail(f"ring buffer dropped {other['dropped']} events (trace truncated)")
    if "provenance" not in other:
        fail("otherData.provenance missing")

    complete, truncated, opened = tracker.summary()
    print(f"check_trace: OK: {spans} spans, {instants} instants, "
          f"{async_events} lifecycle events "
          f"({complete} complete / {truncated} truncated-head / {opened} open), "
          f"{other.get('recorded', '?')} recorded, 0 dropped")
    return 0


def load_jsonl(path: str) -> list:
    events = []
    try:
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    events.append(json.loads(line))
                except json.JSONDecodeError as e:
                    fail(f"{path}:{lineno}: {e}")
    except OSError as e:
        fail(f"{path}: {e}")
    return events


def describe_stage(ev: dict) -> str:
    stage = need(ev, "a0", "lifecycle chain")
    name = STAGE_NAMES.get(stage, f"stage{stage}")
    if stage == STAGE_DROPPED:
        detail = need(ev, "a2", "dropped lifecycle event")
        name += f"[{DROP_CODES.get(detail, detail)}]"
    if ev.get("slot", -1) >= 0:
        name += f"@slot{ev['slot']}"
    return name


def chain_str(chain: list) -> str:
    parts = []
    prev_tick = None
    for ev in chain:
        stage = describe_stage(ev)
        tick = need(ev, "tick", "lifecycle chain")
        if prev_tick is None:
            parts.append(f"{stage} t={tick / TICKS_PER_SECOND:.4f}s")
        else:
            dt = (tick - prev_tick) / TICKS_PER_SECOND
            parts.append(f"{stage} (+{dt:.4f}s)")
        prev_tick = tick
    return " -> ".join(parts)


#: Component names a journal-divergence trip reason may cite — the
#: kJournalComponents list plus the chain-only fallback (run_journal.h).
JOURNAL_COMPONENTS = ("slot_grid", "queues", "counters", "slo", "events",
                      "chain")


def check_journal_trip(trip_reason: str, manifest_cycle: int | None) -> None:
    """A `journal divergence:` trip must name the divergent cycle (agreeing
    with the MANIFEST's own cycle line) and a known component, so the dump
    can be cross-referenced with tools/osumac_diff.py mechanically."""
    m = re.match(r"journal divergence: cycle (\d+): (\w+) hash diverged",
                 trip_reason)
    if m is None:
        fail(f"malformed journal-divergence trip reason: {trip_reason!r}")
    cycle, component = int(m.group(1)), m.group(2)
    if component not in JOURNAL_COMPONENTS:
        fail(f"trip reason names unknown journal component {component!r} "
             f"(expected one of {', '.join(JOURNAL_COMPONENTS)})")
    if manifest_cycle is None:
        fail("journal-divergence dump MANIFEST carries no 'cycle:' line")
    if manifest_cycle != cycle:
        fail(f"trip reason names cycle {cycle} but MANIFEST records trip "
             f"cycle {manifest_cycle}")
    print(f"  journal divergence localized: cycle {cycle}, "
          f"component {component}")


def check_flight_dump(dump_dir: str) -> int:
    manifest_path = os.path.join(dump_dir, "MANIFEST.txt")
    trip_reason = "?"
    manifest_cycle = None
    try:
        with open(manifest_path, encoding="utf-8") as f:
            for line in f:
                if line.startswith("reason: "):
                    trip_reason = line[len("reason: "):].strip()
                elif line.startswith("cycle: "):
                    try:
                        manifest_cycle = int(line[len("cycle: "):].strip())
                    except ValueError:
                        fail(f"malformed MANIFEST cycle line: {line.strip()!r}")
    except OSError as e:
        fail(f"{manifest_path}: {e}")

    events = load_jsonl(os.path.join(dump_dir, "events.jsonl"))
    if not events:
        fail("events.jsonl is empty")

    # Structural pass + lifecycle reconstruction.
    tracker = SpanTracker()
    lifecycles: dict = {}  # id -> list of events in emission order
    for i, ev in enumerate(events):
        if not isinstance(ev, dict) or ev.get("kind") != "lifecycle":
            continue
        where = f"events.jsonl event {i}"
        stage = need(ev, "a0", where)
        span_id = need(ev, "a1", where)
        cls = need(ev, "a3", where)
        tracker.observe(span_id, stage == 0, terminal(stage, cls),
                        need(ev, "tick", where), where)
        lifecycles.setdefault(span_id, []).append(ev)
    if not lifecycles:
        fail("no lifecycle events in the dump window")
    complete, truncated, opened = tracker.summary()

    print(f"check_trace: flight dump {dump_dir}")
    print(f"  trip: {trip_reason}")
    if trip_reason.startswith("journal divergence:"):
        check_journal_trip(trip_reason, manifest_cycle)
    print(f"  lifecycles: {len(lifecycles)} "
          f"({complete} complete / {truncated} truncated-head / {opened} open)")

    # Dropped lifecycles: the packets that never made it, with the stage
    # transition that killed them.
    dropped = [(sid, chain) for sid, chain in lifecycles.items()
               if chain[-1]["a0"] == STAGE_DROPPED]
    for sid, chain in dropped:
        cls = CLASS_NAMES.get(chain[-1]["a3"], "?")
        node = need(chain[-1], "node", f"dropped lifecycle 0x{sid:x}")
        print(f"  dropped {cls} lifecycle 0x{sid:x} node {node}: "
              f"{chain_str(chain)}")

    # GPS budget analysis.  Two complementary reconstructions:
    #  (a) gaps between consecutive delivered lifecycles visible in the
    #      window (both endpoints traced);
    #  (b) every GPS report that burned its slot and was dropped.  The GPS
    #      cadence is one report per 3.984 s cycle — 99.6 % of the 4 s
    #      budget — so losing any single report forces the surrounding
    #      inter-delivery gap to >= 2 cycles = 7.97 s: a guaranteed miss
    #      even when one gap endpoint predates the trace window.
    deliveries: dict = {}  # node -> [(tick, id)]
    for sid, chain in lifecycles.items():
        last = chain[-1]
        if last["a3"] == CLASS_GPS and last["a0"] == STAGE_DELIVERED:
            where = f"delivered GPS lifecycle 0x{sid:x}"
            deliveries.setdefault(need(last, "node", where), []).append(
                (need(last, "end", where), sid))
    blown = 0
    for node, arrivals in sorted(deliveries.items()):
        arrivals.sort()
        for (t0, _), (t1, sid1) in zip(arrivals, arrivals[1:]):
            gap_s = (t1 - t0) / TICKS_PER_SECOND
            if gap_s <= GPS_BUDGET_S:
                continue
            blown += 1
            print(f"  BLOWN BUDGET: node {node} inter-delivery gap "
                  f"{gap_s:.4f}s > {GPS_BUDGET_S}s "
                  f"(delivered at {t0 / TICKS_PER_SECOND:.4f}s, next at "
                  f"{t1 / TICKS_PER_SECOND:.4f}s)")
    for sid, chain in dropped:
        last = chain[-1]
        if last["a3"] != CLASS_GPS:
            continue
        if not any(ev["a0"] == 4 for ev in chain):  # never reached slot_tx
            continue
        blown += 1
        transition = " -> ".join(describe_stage(ev) for ev in chain[-2:])
        print(f"  BLOWN BUDGET: node {need(last, 'node', 'dropped GPS lifecycle')} lost the report in its "
              f"slot — the surrounding inter-delivery gap is >= 7.97s > "
              f"{GPS_BUDGET_S}s; stage that blew the budget: {transition} "
              f"at t={last['tick'] / TICKS_PER_SECOND:.4f}s")
    if "gps_delivery_gap" in trip_reason and blown == 0:
        fail("trip reason names a gps_delivery_gap miss but no blown gap "
             "is reconstructable from the dump window")
    print(f"check_trace: OK: flight dump validated "
          f"({len(events)} events, {blown} blown GPS gap(s) explained)")
    return 0


def main() -> int:
    args = sys.argv[1:]
    if len(args) == 2 and args[0] == "--flight":
        return check_flight_dump(args[1])
    if len(args) == 1 and not args[0].startswith("-"):
        return check_chrome_trace(args[0])
    print(__doc__, file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
