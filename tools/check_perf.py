#!/usr/bin/env python3
"""Validate a BENCH_perf.json wall-clock trajectory file and gate perf
regressions.

Usage: check_perf.py [BENCH_perf.json] [options]

Options:
  --allow-dirty        accept provenance from a dirty working tree (local
                       iteration only; CI and committed artifacts must be
                       clean)
  --require-hotpaths   also require the bench_hotpaths phases and their
                       relative-speed invariants, plus the bench_mac_matrix
                       phase from make_figures --mac-matrix (the Release CI
                       job sets this after merging bench output into the
                       file)
  --max-phase NAME=S   fail if phase NAME's total_seconds exceeds S
                       (repeatable; absolute budgets for a known machine)

Checks, in order:
  1. Schema written by obs::WriteWallTimersJson: a provenance header
     string and a "phases" array where every entry has name/count/
     total_seconds/mean_seconds/max_seconds, counts are integers >= 1,
     numbers are internally consistent (mean*count == total, max <= total).
  2. Provenance hygiene: a `-dirty` git describe means the artifact was
     generated from an uncommitted tree and is rejected (this caught
     BENCH_perf.json being committed with version=84fe8eb-dirty).
  3. The make_figures phases exist, the sweep recorded real wall time, and
     the journaled sweep (sweep_journaled) stays within 1.10x of the
     journal-off sweep — the run journal's zero-cost-when-disabled /
     cheap-when-enabled guarantee.  The bench_metro_serial/bench_metro_t8
     pair gates the sharded Network's speedup, tiered by the `cores=`
     recorded in the provenance (>=3x on an 8-core host, >=1.8x on 4+,
     overhead-only on fewer — a 1-core host cannot demonstrate speedup).
  4. With --require-hotpaths, relative invariants that hold on any
     machine, so CI never depends on absolute host speed:
       - clean RS decode (syndrome fast path) beats the full
         Berlekamp-Massey pipeline by at least 1.5x
       - geometric skip-sampling beats the per-symbol Bernoulli loop
       - an untraced cycle step costs no more than 1.10x a traced one
         (zero-cost disabled observability, with 10% timer noise head)
       - a cycle step with a live obs::Profiler installed costs no more
         than 1.35x the untraced one (self-profiling stays cheap; the
         zones cost ~10-20% in practice, and a per-event-retention
         regression would be a multiple, not a percentage).

CI runs this as the perf-smoke step against the committed repo-root
BENCH_perf.json so the perf trajectory never silently rots.
"""
import json
import sys

REQUIRED_PHASES = ("spec_build", "sweep", "sweep_journaled", "bench_network",
                   "bench_metro_serial", "bench_metro_t8",
                   "write_csv", "write_sweeps_json")
HOTPATH_PHASES = ("hotpath_rs_encode", "hotpath_rs_decode_clean",
                  "hotpath_rs_decode_corrupt", "hotpath_channel_uniform",
                  "hotpath_channel_fast", "hotpath_cycle_untraced",
                  "hotpath_cycle_traced", "hotpath_cycle_profiled")
# The head-to-head MAC comparison sweep; present only when the artifact was
# generated with make_figures --mac-matrix, which the Release CI job (and
# the committed repo-root artifact) must be.
MAC_MATRIX_PHASES = ("bench_mac_matrix",)
REQUIRED_FIELDS = ("name", "count", "total_seconds", "mean_seconds",
                   "max_seconds")


def fail(msg):
    print(f"check_perf: FAIL: {msg}")
    sys.exit(1)


def parse_args(argv):
    path = None
    allow_dirty = False
    require_hotpaths = False
    max_phase = {}
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg == "--allow-dirty":
            allow_dirty = True
        elif arg == "--require-hotpaths":
            require_hotpaths = True
        elif arg == "--max-phase":
            i += 1
            if i >= len(argv) or "=" not in argv[i]:
                fail("--max-phase needs NAME=SECONDS")
            name, _, value = argv[i].partition("=")
            try:
                max_phase[name] = float(value)
            except ValueError:
                fail(f"--max-phase {argv[i]!r}: {value!r} is not a number")
        elif arg.startswith("--"):
            fail(f"unknown option {arg!r}")
        elif path is None:
            path = arg
        else:
            fail(f"unexpected argument {arg!r}")
        i += 1
    return path or "BENCH_perf.json", allow_dirty, require_hotpaths, max_phase


def mean_of(seen, name):
    """Mean seconds of a phase, guarding the zero-count division."""
    entry = seen[name]
    count = entry["count"]
    if count <= 0:  # schema pass rejects this, but belt and braces
        fail(f"phase {name!r}: cannot compute mean with count {count}")
    return entry["total_seconds"] / count


def check_ratio(seen, fast_name, slow_name, limit, what):
    fast = mean_of(seen, fast_name)
    slow = mean_of(seen, slow_name)
    if slow <= 0.0:
        fail(f"phase {slow_name!r} recorded zero wall time — timer broken, "
             f"cannot gate {what}")
    if fast > slow * limit:
        fail(f"{what}: {fast_name} mean {fast:.6f}s exceeds "
             f"{limit}x {slow_name} mean {slow:.6f}s")


def parse_cores(prov):
    """Host cores recorded by make_figures in the provenance (`cores=N`).

    Older artifacts predate the field; treat them as a 1-core host so the
    metro gate degrades to its weakest (overhead-only) tier instead of
    failing on a missing key.
    """
    for token in prov.split():
        if token.startswith("cores="):
            try:
                return max(1, int(token[len("cores="):]))
            except ValueError:
                fail(f"provenance cores= field is not an integer: {token!r}")
    return 1


def check_metro_speedup(seen, cores):
    """Gate the sharded Network's speedup, tiered by the artifact host.

    The bench_metro pair times the identical 64-cell scenario serial and at
    8 worker threads.  What that proves depends on how many cores the
    generating host actually had (recorded as cores= in the provenance):

      cores >= 8   the full acceptance bar: >= 3x speedup
      cores >= 4   partial parallelism: >= 1.8x
      cores  < 4   no speedup is physically demonstrable; require only
                   that the barrier/pool machinery stays cheap (the
                   threaded run within 1.5x of serial, covering scheduler
                   noise from oversubscribing 8 threads onto few cores)
    """
    serial = mean_of(seen, "bench_metro_serial")
    threaded = mean_of(seen, "bench_metro_t8")
    if serial <= 0.0 or threaded <= 0.0:
        fail("bench_metro phase recorded zero wall time — timer broken")
    if cores >= 8:
        limit, what = 1.0 / 3.0, "metro 8-thread speedup below 3x"
    elif cores >= 4:
        limit, what = 1.0 / 1.8, f"metro 8-thread speedup below 1.8x ({cores} cores)"
    else:
        limit, what = 1.5, f"metro parallel overhead on a {cores}-core host"
    check_ratio(seen, "bench_metro_t8", "bench_metro_serial", limit, what)


def main():
    path, allow_dirty, require_hotpaths, max_phase = parse_args(sys.argv[1:])
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    if not isinstance(doc, dict):
        fail(f"{path}: top-level JSON value must be an object, "
             f"got {type(doc).__name__}")

    prov = doc.get("provenance")
    if not isinstance(prov, str) or "version=" not in prov:
        fail("missing or malformed provenance header")
    if "-dirty" in prov and not allow_dirty:
        fail(f"provenance records a dirty working tree ({prov!r}); "
             "regenerate the artifact from a clean checkout "
             "(or pass --allow-dirty for local iteration)")
    phases = doc.get("phases")
    if not isinstance(phases, list) or not phases:
        fail("missing or empty phases array")

    seen = {}
    for entry in phases:
        if not isinstance(entry, dict):
            fail(f"phase entry must be an object: {entry!r}")
        for field in REQUIRED_FIELDS:
            if field not in entry:
                fail(f"phase entry missing field {field!r}: {entry}")
        name = entry["name"]
        if name in seen:
            fail(f"duplicate phase {name!r}")
        seen[name] = entry
        count = entry["count"]
        total = entry["total_seconds"]
        mean = entry["mean_seconds"]
        mx = entry["max_seconds"]
        # bool is an int subclass; a JSON `true` count must still fail.
        if isinstance(count, bool) or not isinstance(count, int) or count < 1:
            fail(f"phase {name!r}: count must be an integer >= 1, got {count!r}")
        for label, v in (("total", total), ("mean", mean), ("max", mx)):
            if isinstance(v, bool) or not isinstance(v, (int, float)) or v < 0:
                fail(f"phase {name!r}: {label}_seconds must be >= 0, got {v!r}")
        # mean*count should reproduce total, and no sample exceeds the sum.
        if abs(mean * count - total) > 1e-9 * max(1.0, total):
            fail(f"phase {name!r}: mean*count != total "
                 f"({mean} * {count} != {total})")
        if mx > total + 1e-12:
            fail(f"phase {name!r}: max_seconds {mx} exceeds total {total}")

    missing = [p for p in REQUIRED_PHASES if p not in seen]
    if missing:
        fail(f"required phase(s) absent: {', '.join(missing)}")
    if seen["sweep"]["total_seconds"] <= 0:
        fail("sweep phase recorded zero wall time — timer not running?")
    # The run journal's CI-gated overhead guarantee: re-running the default
    # sweep with per-cycle journaling on must stay within 1.10x of the
    # journal-off sweep (the hooks are allocation-free digest folds; a
    # regression past 10% means someone made them retain or allocate).
    check_ratio(seen, "sweep_journaled", "sweep", 1.10,
                "run-journal overhead regression")
    check_metro_speedup(seen, parse_cores(prov))

    if require_hotpaths:
        missing = [p for p in HOTPATH_PHASES if p not in seen]
        if missing:
            fail(f"hotpath phase(s) absent (run bench_hotpaths --merge-into): "
                 f"{', '.join(missing)}")
        check_ratio(seen, "hotpath_rs_decode_clean", "hotpath_rs_decode_corrupt",
                    1.0 / 1.5, "syndrome fast path regression")
        check_ratio(seen, "hotpath_channel_fast", "hotpath_channel_uniform",
                    1.0, "fast-channel skip-sampling regression")
        check_ratio(seen, "hotpath_cycle_untraced", "hotpath_cycle_traced",
                    1.10, "disabled-observability overhead regression")
        # An *installed* profiler must stay cheap: the zones are aggregate
        # counters, not per-event records, so a profiled cycle step costs
        # ~10-20% over the untraced baseline.  The 1.35x bound leaves noise
        # head on a loaded runner while still catching any regression to
        # per-event retention (which would be a multiple, not a percentage).
        check_ratio(seen, "hotpath_cycle_profiled", "hotpath_cycle_untraced",
                    1.35, "live-profiler overhead regression")
        missing = [p for p in MAC_MATRIX_PHASES if p not in seen]
        if missing:
            fail(f"mac-matrix phase(s) absent (run make_figures --mac-matrix): "
                 f"{', '.join(missing)}")
        if seen["bench_mac_matrix"]["total_seconds"] <= 0:
            fail("bench_mac_matrix phase recorded zero wall time — "
                 "timer not running?")

    for name, budget in max_phase.items():
        if name not in seen:
            fail(f"--max-phase {name}: no such phase in {path}")
        total = seen[name]["total_seconds"]
        if total > budget:
            fail(f"phase {name!r}: total {total:.3f}s exceeds budget {budget}s")

    total = sum(e["total_seconds"] for e in phases)
    print(f"check_perf: OK: {path}: {len(phases)} phase(s), "
          f"{total:.3f}s total wall time")
    print(f"  {prov}")


if __name__ == "__main__":
    main()
