#!/usr/bin/env python3
"""Validate a BENCH_perf.json wall-clock trajectory file.

Usage: check_perf.py [BENCH_perf.json]   (default: BENCH_perf.json)

Checks the schema written by obs::WriteWallTimersJson from make_figures:
a provenance header string, and a "phases" array where every entry has
name/count/total_seconds/mean_seconds/max_seconds, all required phases
are present, and the numbers are internally consistent (count >= 1,
0 <= mean <= max <= total, %.17g round-trip exact).  CI runs this as the
perf-smoke step against the committed repo-root BENCH_perf.json so the
perf trajectory never silently rots.
"""
import json
import sys

REQUIRED_PHASES = ("spec_build", "sweep", "write_csv", "write_sweeps_json")
REQUIRED_FIELDS = ("name", "count", "total_seconds", "mean_seconds",
                   "max_seconds")


def fail(msg):
    print(f"check_perf: FAIL: {msg}")
    sys.exit(1)


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_perf.json"
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    prov = doc.get("provenance")
    if not isinstance(prov, str) or "version=" not in prov:
        fail("missing or malformed provenance header")
    phases = doc.get("phases")
    if not isinstance(phases, list) or not phases:
        fail("missing or empty phases array")

    seen = {}
    for entry in phases:
        for field in REQUIRED_FIELDS:
            if field not in entry:
                fail(f"phase entry missing field {field!r}: {entry}")
        name = entry["name"]
        if name in seen:
            fail(f"duplicate phase {name!r}")
        seen[name] = entry
        count = entry["count"]
        total = entry["total_seconds"]
        mean = entry["mean_seconds"]
        mx = entry["max_seconds"]
        if not isinstance(count, int) or count < 1:
            fail(f"phase {name!r}: count must be an integer >= 1, got {count}")
        for label, v in (("total", total), ("mean", mean), ("max", mx)):
            if not isinstance(v, (int, float)) or v < 0:
                fail(f"phase {name!r}: {label}_seconds must be >= 0, got {v}")
        # mean*count should reproduce total, and no sample exceeds the sum.
        if abs(mean * count - total) > 1e-9 * max(1.0, total):
            fail(f"phase {name!r}: mean*count != total "
                 f"({mean} * {count} != {total})")
        if mx > total + 1e-12:
            fail(f"phase {name!r}: max_seconds {mx} exceeds total {total}")

    missing = [p for p in REQUIRED_PHASES if p not in seen]
    if missing:
        fail(f"required phase(s) absent: {', '.join(missing)}")
    if seen["sweep"]["total_seconds"] <= 0:
        fail("sweep phase recorded zero wall time — timer not running?")

    total = sum(e["total_seconds"] for e in phases)
    print(f"check_perf: OK: {path}: {len(phases)} phase(s), "
          f"{total:.3f}s total wall time")
    print(f"  {prov}")


if __name__ == "__main__":
    main()
