// osumac_sim — configurable command-line front end to the simulator.
//
//   $ osumac_sim --rho 0.8 --data-users 12 --gps 4 --cycles 1000
//                --channel uniform --ser 0.02 --seed 7
//   $ osumac_sim --scenario sweeps.scn --jobs 8 --out sweeps.json
//
// Single-run mode builds one declarative scenario (src/exp) from the
// flags, drives it through the engine's phases, and prints the full
// Section-5 metric set; --audit/--trace/--metrics/--timers attach their
// instrumentation to the live cell between phases.  Scenario mode
// (--scenario FILE) parses a scenario file, executes every spec on the
// sweep runner (--jobs N workers, bit-identical at any N), and emits the
// results as CSV (default) or the BENCH_sweeps.json format (--out *.json).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "osumac/osumac.h"

using namespace osumac;

namespace {

struct Options {
  double rho = 0.7;
  int data_users = 10;
  int gps_users = 4;
  int cycles = 500;
  int warmup = 50;
  std::uint64_t seed = 1;
  std::string channel = "perfect";
  double ser = 0.02;
  bool arq = false;
  bool no_second_cf = false;
  bool static_gps = false;
  bool static_contention = false;
  std::string mac = "osu";
  int fixed_size = 0;  ///< 0 = uniform 40..500
  double downlink_rho = 0.0;
  bool audit = false;
  bool timers = false;
  bool slo = false;
  std::string trace_file;
  bool trace_format_set = false;
  std::string trace_format = "chrome";
  std::string metrics_file;
  std::string flight_dir;
  int flight_cycles = 64;
  bool flight_cycles_set = false;
  bool flight_dump_on_exit = false;
  std::string journal_file;
  int journal_every = 1;
  bool journal_every_set = false;
  std::string journal_expect_file;
  int fault_cycle = 0;
  bool fault_cycle_set = false;
  std::string scenario_file;
  std::string out_file;
  int jobs = 1;
  int cells = 0;  ///< 0 = single-cell mode; N >= 2 = network mode
  int threads = 1;
  bool threads_set = false;
  std::string profile_file;
  bool profile_format_set = false;
  std::string profile_format = "speedscope";
  bool help = false;
};

void PrintUsage() {
  std::printf(
      "usage: osumac_sim [options]\n"
      "  --rho X             reverse-channel load index (default 0.7)\n"
      "  --data-users N      non-real-time subscribers (default 10)\n"
      "  --gps N             GPS buses, 0..8 (default 4)\n"
      "  --cycles N          measured notification cycles (default 500)\n"
      "  --warmup N          warm-up cycles excluded from stats (default 50)\n"
      "  --seed N            RNG seed (default 1)\n"
      "  --channel KIND      perfect | uniform | ge (default perfect)\n"
      "  --ser P             symbol error probability for 'uniform'\n"
      "  --fixed-size B      fixed message size in bytes (default: uniform 40-500)\n"
      "  --downlink-rho X    also drive downlink e-mail at this load\n"
      "  --arq               enable the downlink ARQ extension\n"
      "  --no-second-cf      ablation: disable the second control fields\n"
      "  --static-gps        ablation: disable dynamic GPS slot adjustment\n"
      "  --static-contention ablation: fixed number of contention slots\n"
      "  --mac NAME          MAC policy: osu | rqma | pca (default osu);\n"
      "                      non-osu tenants run on the generic PolicyCell\n"
      "                      driver (see docs/MAC_POLICIES.md)\n"
      "  --audit             run the protocol-invariant auditor alongside\n"
      "  --trace FILE        record the measured cycles as a structured event\n"
      "                      trace and write it to FILE\n"
      "  --trace-format F    chrome | jsonl | timeline (default chrome)\n"
      "  --metrics FILE      dump the full metrics registry (.json for JSON,\n"
      "                      anything else for CSV)\n"
      "  --slo               print the QoS/SLO report (per-class percentiles\n"
      "                      and budget misses) after the run\n"
      "  --flight-dir DIR    arm the flight recorder: on an audit violation\n"
      "                      or SLO budget miss, dump the retained event and\n"
      "                      metrics window to DIR (see docs/OBSERVABILITY.md)\n"
      "  --flight-cycles N   metrics snapshots the recorder retains\n"
      "                      (default 64; requires --flight-dir)\n"
      "  --flight-dump-on-exit  also dump at run end if nothing tripped\n"
      "                      (requires --flight-dir)\n"
      "  --journal FILE      record the per-cycle digest journal over the\n"
      "                      measured cycles and write it as JSONL to FILE\n"
      "                      (diff two runs with tools/osumac_diff.py)\n"
      "  --journal-every N   journal every N-th cycle (default 1; requires\n"
      "                      --journal or --journal-expect)\n"
      "  --journal-expect REF  compare the live run against a reference\n"
      "                      journal JSONL as it executes; the first\n"
      "                      divergent cycle trips the flight recorder (if\n"
      "                      armed) and the run exits 3\n"
      "  --fault-cycle N     fault injection: perturb the cell RNG stream at\n"
      "                      the start of absolute cycle N (the journal\n"
      "                      record for N is untouched; N+1 diverges)\n"
      "  --timers            report wall-clock timers on exit\n"
      "  --cells N           network mode: run N cells in lockstep with\n"
      "                      random-walk mobility and cross-cell chatter;\n"
      "                      --data-users/--gps become per-cell populations\n"
      "                      and the report shows backbone/handoff counters\n"
      "                      plus the merged network SLO rollup\n"
      "  --threads N         network mode: shard the lockstep loop over N\n"
      "                      worker threads (0 = all cores, default 1;\n"
      "                      deterministic — journals and counters are\n"
      "                      bit-identical at any N; requires --cells)\n"
      "  --profile FILE      self-profile the run (obs::Profiler zones over\n"
      "                      the cycle pipeline) and write the result to FILE\n"
      "  --profile-format F  speedscope | collapsed | chrome | report\n"
      "                      (default speedscope; requires --profile)\n"
      "  --scenario FILE     sweep mode: run every scenario in FILE (see\n"
      "                      docs/SCENARIOS.md for the format)\n"
      "  --jobs N            sweep worker threads (0 = all cores, default 1;\n"
      "                      results are bit-identical at any N)\n"
      "  --out FILE          sweep results to FILE: .json for the\n"
      "                      BENCH_sweeps.json format, else CSV (default:\n"
      "                      CSV on stdout)\n"
      "Options also accept --opt=value form.\n"
      "Single-run instrumentation (--audit/--trace/--metrics/--timers/--slo/\n"
      "--flight-*) attaches to one live cell and cannot be combined with\n"
      "--scenario sweep mode; sweep results carry their SLO digests in the\n"
      "JSON output instead.\n");
}

bool ParseArgs(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Accept --opt=value as well as --opt value.
    std::string inline_value;
    bool has_inline = false;
    if (arg.size() > 2 && arg.rfind("--", 0) == 0) {
      const std::size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg.erase(eq);
        has_inline = true;
      }
    }
    auto next_string = [&](std::string& out) {
      if (has_inline) {
        out = inline_value;
        return true;
      }
      if (i + 1 >= argc) return false;
      out = argv[++i];
      return true;
    };
    auto next_value = [&](double& out) {
      std::string s;
      if (!next_string(s)) return false;
      out = std::atof(s.c_str());
      return true;
    };
    auto next_int = [&](int& out) {
      std::string s;
      if (!next_string(s)) return false;
      out = std::atoi(s.c_str());
      return true;
    };
    if (arg == "--rho") {
      if (!next_value(opt.rho)) return false;
    } else if (arg == "--data-users") {
      if (!next_int(opt.data_users)) return false;
    } else if (arg == "--gps") {
      if (!next_int(opt.gps_users)) return false;
    } else if (arg == "--cycles") {
      if (!next_int(opt.cycles)) return false;
    } else if (arg == "--warmup") {
      if (!next_int(opt.warmup)) return false;
    } else if (arg == "--seed") {
      int s = 0;
      if (!next_int(s)) return false;
      opt.seed = static_cast<std::uint64_t>(s);
    } else if (arg == "--channel") {
      if (!next_string(opt.channel)) return false;
    } else if (arg == "--ser") {
      if (!next_value(opt.ser)) return false;
    } else if (arg == "--fixed-size") {
      if (!next_int(opt.fixed_size)) return false;
    } else if (arg == "--downlink-rho") {
      if (!next_value(opt.downlink_rho)) return false;
    } else if (arg == "--arq") {
      opt.arq = true;
    } else if (arg == "--no-second-cf") {
      opt.no_second_cf = true;
    } else if (arg == "--static-gps") {
      opt.static_gps = true;
    } else if (arg == "--static-contention") {
      opt.static_contention = true;
    } else if (arg == "--mac") {
      if (!next_string(opt.mac)) return false;
    } else if (arg == "--audit") {
      opt.audit = true;
    } else if (arg == "--trace") {
      if (!next_string(opt.trace_file)) return false;
    } else if (arg == "--trace-format") {
      if (!next_string(opt.trace_format)) return false;
      opt.trace_format_set = true;
    } else if (arg == "--metrics") {
      if (!next_string(opt.metrics_file)) return false;
    } else if (arg == "--slo") {
      opt.slo = true;
    } else if (arg == "--flight-dir") {
      if (!next_string(opt.flight_dir)) return false;
    } else if (arg == "--flight-cycles") {
      if (!next_int(opt.flight_cycles)) return false;
      opt.flight_cycles_set = true;
    } else if (arg == "--flight-dump-on-exit") {
      opt.flight_dump_on_exit = true;
    } else if (arg == "--journal") {
      if (!next_string(opt.journal_file)) return false;
    } else if (arg == "--journal-every") {
      if (!next_int(opt.journal_every)) return false;
      opt.journal_every_set = true;
    } else if (arg == "--journal-expect") {
      if (!next_string(opt.journal_expect_file)) return false;
    } else if (arg == "--fault-cycle") {
      if (!next_int(opt.fault_cycle)) return false;
      opt.fault_cycle_set = true;
    } else if (arg == "--timers") {
      opt.timers = true;
    } else if (arg == "--cells") {
      if (!next_int(opt.cells)) return false;
    } else if (arg == "--threads") {
      if (!next_int(opt.threads)) return false;
      opt.threads_set = true;
    } else if (arg == "--profile") {
      if (!next_string(opt.profile_file)) return false;
    } else if (arg == "--profile-format") {
      if (!next_string(opt.profile_format)) return false;
      opt.profile_format_set = true;
    } else if (arg == "--scenario") {
      if (!next_string(opt.scenario_file)) return false;
    } else if (arg == "--out") {
      if (!next_string(opt.out_file)) return false;
    } else if (arg == "--jobs" || arg == "-j") {
      if (!next_int(opt.jobs)) return false;
    } else if (arg == "--help" || arg == "-h") {
      opt.help = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

/// The single-run scenario implied by the command-line flags.
exp::ScenarioSpec SpecFromOptions(const Options& opt, std::string* error) {
  exp::ScenarioSpec spec;
  spec.name = "osumac_sim";
  spec.data_users = opt.data_users;
  spec.gps_users = opt.gps_users;
  spec.registration_cycles = 12;
  spec.warmup_cycles = opt.warmup;
  spec.measure_cycles = opt.cycles;
  spec.seed = opt.seed;
  spec.workload.rho = opt.rho;
  spec.workload.sizes = opt.fixed_size > 0
                            ? traffic::SizeDistribution::Fixed(opt.fixed_size)
                            : traffic::SizeDistribution::Uniform(40, 500);
  spec.workload.downlink_rho = opt.downlink_rho;
  spec.workload.downlink_sizes = spec.workload.sizes;
  spec.mac.downlink_arq = opt.arq;
  spec.mac.use_second_control_field = !opt.no_second_cf;
  spec.mac.dynamic_gps_slots = !opt.static_gps;
  spec.mac.dynamic_contention_slots = !opt.static_contention;
  spec.mac_policy = opt.mac;
  if (opt.channel == "uniform") {
    spec.forward.kind = mac::ChannelModelConfig::Kind::kUniform;
    spec.forward.symbol_error_prob = opt.ser / 2;  // stronger BS transmitter
    spec.reverse.kind = mac::ChannelModelConfig::Kind::kUniform;
    spec.reverse.symbol_error_prob = opt.ser;
  } else if (opt.channel == "ge") {
    spec.forward.kind = mac::ChannelModelConfig::Kind::kGilbertElliott;
    spec.reverse.kind = mac::ChannelModelConfig::Kind::kGilbertElliott;
  } else if (opt.channel != "perfect") {
    *error = "unknown channel kind '" + opt.channel + "'";
  }
  return spec;
}

/// Sweep mode: parse the scenario file, run it, emit CSV or JSON.
int RunSweep(const Options& opt) {
  std::ifstream in(opt.scenario_file);
  if (!in) {
    std::fprintf(stderr, "cannot open scenario file '%s'\n",
                 opt.scenario_file.c_str());
    return 1;
  }
  std::string error;
  const std::vector<exp::ScenarioSpec> specs = exp::ParseScenarios(in, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "%s: %s\n", opt.scenario_file.c_str(), error.c_str());
    return 1;
  }
  const exp::SweepRunner runner(opt.jobs);
  std::fprintf(stderr, "running %zu scenarios on %d workers...\n", specs.size(),
               runner.jobs());
  const obs::Stopwatch stopwatch;
  const std::vector<exp::RunResult> results = runner.Run(specs);
  const double wall_seconds = stopwatch.Seconds();

  const bool json = opt.out_file.size() >= 5 &&
                    opt.out_file.rfind(".json") == opt.out_file.size() - 5;
  if (opt.out_file.empty()) {
    exp::WriteSweepCsv(std::cout, specs, results);
  } else {
    std::ofstream out(opt.out_file);
    if (!out) {
      std::fprintf(stderr, "cannot open output file '%s'\n", opt.out_file.c_str());
      return 1;
    }
    if (json) {
      exp::WriteSweepJson(out, "osumac_sim", runner.jobs(), wall_seconds, specs,
                          results);
    } else {
      exp::WriteSweepCsv(out, specs, results);
    }
    std::fprintf(stderr, "wrote %zu points -> %s (%s, %.1f s)\n", results.size(),
                 opt.out_file.c_str(), json ? "json" : "csv", wall_seconds);
  }
  return 0;
}

/// Writes the recorded zone tree to opt.profile_file in the selected
/// format.  Returns false (with a message) when the file cannot be opened.
bool WriteProfileFile(const Options& opt, const obs::Profiler& profiler,
                      const std::string& provenance) {
  std::ofstream out(opt.profile_file);
  if (!out) {
    std::fprintf(stderr, "cannot open profile file '%s'\n",
                 opt.profile_file.c_str());
    return false;
  }
  if (opt.profile_format == "speedscope") {
    obs::WriteSpeedscope(out, profiler, "osumac_sim");
  } else if (opt.profile_format == "collapsed") {
    obs::WriteCollapsed(out, profiler);
  } else if (opt.profile_format == "chrome") {
    obs::WriteChromeTraceProfile(out, profiler, provenance);
  } else {
    obs::WriteProfileReport(out, profiler);
  }
  std::printf("profile                -> %s (%s)\n", opt.profile_file.c_str(),
              opt.profile_format.c_str());
  if (profiler.empty()) {
    std::printf("profile                (empty: built with -DOSUMAC_PROFILER=OFF?)\n");
  }
  return true;
}

/// Network mode (--cells N): run N cells in lockstep with mobility and
/// cross-cell chatter, then print the backbone counters and the merged
/// network SLO rollup.
int RunNetwork(const Options& opt, const std::string& provenance) {
  exp::NetworkScenarioSpec spec;
  spec.name = "osumac_sim_network";
  spec.cells = opt.cells;
  spec.data_users_per_cell = opt.data_users;
  spec.gps_users_per_cell = opt.gps_users;
  spec.warmup_cycles = opt.warmup;
  spec.measure_cycles = opt.cycles;
  spec.seed = opt.seed;
  spec.threads = exp::ResolveJobs(opt.threads);
  spec.mac.downlink_arq = opt.arq;
  spec.mac.use_second_control_field = !opt.no_second_cf;
  spec.mac.dynamic_gps_slots = !opt.static_gps;
  spec.mac.dynamic_contention_slots = !opt.static_contention;

  exp::NetworkScenarioRun run(spec);
  obs::Profiler profiler;
  obs::CellJournal::Config journal_config;
  journal_config.every = opt.journal_every;
  obs::RunJournal journal(journal_config);
  exp::RunResult result;
  {
    // Install for the whole run so every phase's zones aggregate into one
    // tree; the scope closes before export (exports require closed zones).
    const obs::Profiler::ThreadScope scope(
        opt.profile_file.empty() ? nullptr : &profiler);
    run.BuildPopulation();
    run.Warmup();
    // Same warm-up boundary as the single-cell path: every cell journals
    // its own thread-confined slice over exactly the measured window.
    if (!opt.journal_file.empty()) run.network().AttachJournal(&journal);
    run.Measure();
    result = run.Finish();
  }

  std::printf(
      "==== osumac_sim: cells=%d users/cell=%d gps/cell=%d cycles=%d "
      "threads=%d ====\n",
      opt.cells, opt.data_users, opt.gps_users, opt.cycles, spec.threads);
  std::printf("subscribers            %8d\n", result.network.subscribers);
  std::printf("measured cycles        %8lld per cell\n",
              static_cast<long long>(result.measured_cycles));
  std::printf("messages attempted     %8lld\n",
              static_cast<long long>(result.uplink_messages_offered));
  std::printf("backbone routed        %8lld\n",
              static_cast<long long>(result.network.backbone_messages));
  std::printf("backbone unrouted      %8lld\n",
              static_cast<long long>(result.network.backbone_unrouted));
  std::printf("handoffs               %8lld\n",
              static_cast<long long>(result.network.handoffs));

  if (!opt.metrics_file.empty()) {
    obs::MetricsRegistry registry;
    metrics::RegisterNetworkMetrics(registry, run.network());
    std::ofstream out(opt.metrics_file);
    if (!out) {
      std::fprintf(stderr, "cannot open metrics file '%s'\n",
                   opt.metrics_file.c_str());
      return 1;
    }
    const bool json = opt.metrics_file.size() >= 5 &&
                      opt.metrics_file.rfind(".json") == opt.metrics_file.size() - 5;
    if (json) {
      registry.WriteJson(out);
    } else {
      registry.WriteCsv(out);
    }
    std::printf("metrics                -> %s (%s; cell.<i>.* + net.*)\n",
                opt.metrics_file.c_str(), json ? "json" : "csv");
  }
  if (opt.slo) {
    std::printf("--- network SLO rollup (%d cells merged) ---\n",
                result.network.cells);
    run.network().SloRollup().WriteReport(std::cout);
  }
  if (!opt.journal_file.empty()) {
    if (!obs::WriteJournalJsonl(journal, opt.journal_file, provenance)) {
      std::fprintf(stderr, "cannot open journal file '%s'\n",
                   opt.journal_file.c_str());
      return 1;
    }
    std::printf("journal                -> %s (%zu cells, every %d, signature %s)\n",
                opt.journal_file.c_str(), journal.cells().size(),
                journal.every(), obs::JournalHex(journal.Signature()).c_str());
  }
  if (!opt.profile_file.empty() &&
      !WriteProfileFile(opt, profiler, provenance)) {
    return 1;
  }
  return 0;
}

/// Single-run path for a non-OSU MAC policy (--mac rqma|pca): the generic
/// PolicyCell driver via the engine's serial runner.  The cell lives only
/// inside RunScenario, so the dumps that need it live (the metrics-registry
/// gauges, the SLO report) run from the policy hooks.
int RunPolicy(const Options& opt, const exp::ScenarioSpec& spec,
              const std::string& provenance) {
  analysis::PolicyAuditor auditor;
  obs::WallTimerRegistry wall_timers;
  obs::Profiler profiler;
  std::ostringstream slo_report;
  bool metrics_failed = false;
  exp::RunHooks hooks;
  hooks.policy_after_build = [&](mac::PolicyCell& cell) {
    if (opt.audit) cell.AddObserver(&auditor);
    if (opt.timers) cell.simulator().AttachWallTimers(&wall_timers);
  };
  hooks.policy_before_finish = [&](mac::PolicyCell& cell) {
    if (!opt.metrics_file.empty()) {
      obs::MetricsRegistry registry;
      metrics::RegisterPolicyCellMetrics(registry, cell);
      std::ofstream out(opt.metrics_file);
      if (!out) {
        std::fprintf(stderr, "cannot open metrics file '%s'\n",
                     opt.metrics_file.c_str());
        metrics_failed = true;
        return;
      }
      const bool json =
          opt.metrics_file.size() >= 5 &&
          opt.metrics_file.rfind(".json") == opt.metrics_file.size() - 5;
      if (json) {
        registry.WriteJson(out);
      } else {
        registry.WriteCsv(out);
      }
      std::printf("metrics                -> %s (%s; mac.%s.*)\n",
                  opt.metrics_file.c_str(), json ? "json" : "csv",
                  cell.policy().name().c_str());
    }
    if (opt.slo) cell.slo().WriteReport(slo_report);
  };

  exp::RunResult result;
  {
    const obs::Profiler::ThreadScope profile_scope(
        opt.profile_file.empty() ? nullptr : &profiler);
    result = exp::RunScenario(spec, hooks);
  }
  if (metrics_failed) return 1;
  if (!opt.journal_file.empty()) {
    if (result.journal == nullptr ||
        !obs::WriteJournalJsonl(*result.journal, opt.journal_file, provenance)) {
      std::fprintf(stderr, "cannot write journal file '%s'\n",
                   opt.journal_file.c_str());
      return 1;
    }
    std::printf("journal                -> %s (every %d, signature %s)\n",
                opt.journal_file.c_str(), result.journal->every(),
                obs::JournalHex(result.journal->Signature()).c_str());
  }

  const metrics::FigureMetrics& m = result.figure;
  const mac::BsCounters& bs = result.bs;
  std::printf(
      "==== osumac_sim: mac=%s rho=%.2f users=%d gps=%d cycles=%d channel=%s ====\n",
      opt.mac.c_str(), opt.rho, opt.data_users, opt.gps_users, opt.cycles,
      opt.channel.c_str());
  std::printf("utilization            %8.3f\n", m.utilization);
  std::printf("packet delay           %8.2f cycles (p95 %.2f)\n",
              m.mean_packet_delay_cycles, m.p95_packet_delay_cycles);
  std::printf("message delay          %8.2f cycles\n", m.mean_message_delay_cycles);
  std::printf("collision probability  %8.3f\n", m.collision_probability);
  std::printf("fairness (Jain)        %8.4f\n", m.fairness_index);
  std::printf("data slots used        %8.2f per cycle\n", m.avg_data_slots_used);
  std::printf("drop rate              %8.3f (policy deadline drops)\n",
              m.message_drop_rate);
  if (opt.gps_users > 0) {
    std::printf("GPS max access delay   %8.2f s (bound 4 s)\n",
                m.gps_access_delay_max_s);
    std::printf("GPS reports/bus/cycle  %8.3f\n", m.gps_reports_per_bus_per_cycle);
  }
  if (bs.decode_failures > 0) {
    std::printf("uplink decode failures %8lld\n",
                static_cast<long long>(bs.decode_failures));
  }
  if (opt.slo) std::fputs(slo_report.str().c_str(), stdout);
  if (!opt.profile_file.empty() &&
      !WriteProfileFile(opt, profiler, provenance)) {
    return 1;
  }
  if (opt.timers) wall_timers.Report(std::cout);
  if (opt.audit) {
    std::printf("audit                  %s\n", auditor.Report().c_str());
    if (!auditor.violations().empty()) return 2;
  }
  return 0;
}

/// Flag-composition rules, checked up front so a conflicting invocation
/// errors out instead of silently ignoring instrumentation flags (the old
/// behavior: sweep mode dropped --trace/--metrics/--audit on the floor).
/// Returns an error message, or "" if the combination is valid.
std::string ValidateFlagComposition(const Options& opt) {
  if (!mac::IsKnownMacPolicy(opt.mac)) {
    return "unknown MAC policy '" + opt.mac +
           "' (expected one of: osu, rqma, pca)";
  }
  if (opt.mac != "osu") {
    if (opt.cells != 0) {
      return "--mac runs one policy cell; --cells network mode is OSU-only "
             "(cross-cell signalling rides on the OSU control fields)";
    }
    if (!opt.scenario_file.empty()) {
      return "--mac shapes the single-run spec; scenario files select a "
             "policy per spec with the 'mac' key instead (docs/SCENARIOS.md)";
    }
    const char* conflicting = nullptr;
    if (!opt.trace_file.empty()) conflicting = "--trace";
    else if (opt.trace_format_set) conflicting = "--trace-format";
    else if (!opt.flight_dir.empty()) conflicting = "--flight-dir";
    else if (opt.flight_cycles_set) conflicting = "--flight-cycles";
    else if (opt.flight_dump_on_exit) conflicting = "--flight-dump-on-exit";
    if (conflicting != nullptr) {
      return std::string(conflicting) +
             " records the OSU cell's event stream; policy tenants (--mac) "
             "do not emit one (supported there: --audit, --metrics, --slo, "
             "--timers, --profile, --journal)";
    }
    if (!opt.journal_expect_file.empty()) {
      return "--journal-expect compares against the live OSU cell and is not "
             "supported with --mac (policy runs can still record with "
             "--journal and diff offline via tools/osumac_diff.py)";
    }
    if (opt.fault_cycle_set) {
      return "--fault-cycle perturbs the OSU cell's RNG stream; policy "
             "tenants (--mac) draw from the policy seed stream instead";
    }
    const char* osu_only = nullptr;
    if (opt.downlink_rho > 0) osu_only = "--downlink-rho";
    else if (opt.arq) osu_only = "--arq";
    else if (opt.no_second_cf) osu_only = "--no-second-cf";
    else if (opt.static_gps) osu_only = "--static-gps";
    else if (opt.static_contention) osu_only = "--static-contention";
    if (osu_only != nullptr) {
      return std::string(osu_only) +
             " drives the OSU scheduler and would be silently ignored by "
             "--mac " + opt.mac + " (policy tenants are uplink-only)";
    }
  }
  if (!opt.scenario_file.empty()) {
    const char* conflicting = nullptr;
    if (!opt.trace_file.empty()) conflicting = "--trace";
    else if (opt.trace_format_set) conflicting = "--trace-format";
    else if (!opt.metrics_file.empty()) conflicting = "--metrics";
    else if (opt.audit) conflicting = "--audit";
    else if (opt.timers) conflicting = "--timers";
    else if (opt.slo) conflicting = "--slo";
    else if (!opt.flight_dir.empty()) conflicting = "--flight-dir";
    else if (opt.flight_cycles_set) conflicting = "--flight-cycles";
    else if (opt.flight_dump_on_exit) conflicting = "--flight-dump-on-exit";
    else if (!opt.journal_file.empty()) conflicting = "--journal";
    else if (opt.journal_every_set) conflicting = "--journal-every";
    else if (!opt.journal_expect_file.empty()) conflicting = "--journal-expect";
    else if (opt.fault_cycle_set) conflicting = "--fault-cycle";
    if (conflicting != nullptr) {
      return std::string(conflicting) +
             " attaches to a single live cell and cannot be combined with "
             "--scenario sweep mode (sweep JSON output carries per-point SLO "
             "digests instead, and journal signatures when a spec sets "
             "journal_every)";
    }
  }
  if (!opt.scenario_file.empty() && !opt.profile_file.empty()) {
    return "--profile attaches to the serial single-run (or network) path; "
           "sweep workers run unprofiled so results stay bit-identical at "
           "any --jobs";
  }
  if (opt.cells != 0) {
    if (opt.cells < 2) return "--cells needs at least 2 cells";
    const char* conflicting = nullptr;
    if (!opt.scenario_file.empty()) conflicting = "--scenario";
    else if (!opt.trace_file.empty()) conflicting = "--trace";
    else if (opt.trace_format_set) conflicting = "--trace-format";
    else if (opt.audit) conflicting = "--audit";
    else if (opt.timers) conflicting = "--timers";
    else if (!opt.flight_dir.empty()) conflicting = "--flight-dir";
    else if (opt.flight_cycles_set) conflicting = "--flight-cycles";
    else if (opt.flight_dump_on_exit) conflicting = "--flight-dump-on-exit";
    if (conflicting != nullptr) {
      return std::string(conflicting) +
             " attaches to a single live cell and cannot be combined with "
             "--cells network mode (supported there: --metrics, --slo, "
             "--profile, --journal)";
    }
    if (!opt.journal_expect_file.empty()) {
      return "--journal-expect compares one live cell against a reference; "
             "record network journals with --journal and diff offline via "
             "tools/osumac_diff.py";
    }
    if (opt.fault_cycle_set) {
      return "--fault-cycle perturbs a single cell's RNG stream and cannot "
             "be combined with --cells network mode";
    }
    if (opt.channel != "perfect") {
      return "--cells network mode currently runs perfect channels only";
    }
    if (opt.downlink_rho > 0) {
      return "--downlink-rho drives a single cell's downlink; network mode "
             "generates its own cross-cell chatter instead";
    }
    if (opt.threads_set) {
      if (opt.threads < 0) return "--threads must be >= 0 (0 = all cores)";
      if (opt.threads != 1 && !opt.profile_file.empty()) {
        return "--profile zones are thread-local and worker cells would "
               "profile into the void; use --threads 1 with --profile";
      }
    }
  }
  if (opt.threads_set && opt.cells == 0) {
    return "--threads shards the --cells lockstep loop; single-cell runs "
           "are serial (use --jobs for sweep parallelism)";
  }
  if (opt.trace_format_set && opt.trace_file.empty()) {
    return "--trace-format requires --trace FILE";
  }
  if (opt.profile_format_set && opt.profile_file.empty()) {
    return "--profile-format requires --profile FILE";
  }
  if (opt.flight_dir.empty()) {
    if (opt.flight_cycles_set) return "--flight-cycles requires --flight-dir DIR";
    if (opt.flight_dump_on_exit) {
      return "--flight-dump-on-exit requires --flight-dir DIR";
    }
  }
  if (opt.flight_cycles_set && opt.flight_cycles < 1) {
    return "--flight-cycles must be >= 1";
  }
  if (opt.journal_every_set) {
    if (opt.journal_file.empty() && opt.journal_expect_file.empty()) {
      return "--journal-every requires --journal FILE or --journal-expect REF";
    }
    if (opt.journal_every < 1) return "--journal-every must be >= 1";
  }
  if (opt.fault_cycle_set && opt.fault_cycle < 0) {
    return "--fault-cycle must be >= 0";
  }
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!ParseArgs(argc, argv, opt) || opt.help) {
    PrintUsage();
    return opt.help ? 0 : 1;
  }
  if (const std::string err = ValidateFlagComposition(opt); !err.empty()) {
    std::fprintf(stderr, "osumac_sim: %s\n\n", err.c_str());
    PrintUsage();
    return 1;
  }
  if (!opt.scenario_file.empty()) return RunSweep(opt);
  if (opt.gps_users < 0 || opt.gps_users > 8 || opt.data_users < 1) {
    std::fprintf(stderr, "invalid population\n");
    return 1;
  }
  if (opt.trace_format != "chrome" && opt.trace_format != "jsonl" &&
      opt.trace_format != "timeline") {
    std::fprintf(stderr, "unknown trace format '%s'\n", opt.trace_format.c_str());
    return 1;
  }
  if (opt.profile_format != "speedscope" && opt.profile_format != "collapsed" &&
      opt.profile_format != "chrome" && opt.profile_format != "report") {
    std::fprintf(stderr, "unknown profile format '%s'\n",
                 opt.profile_format.c_str());
    return 1;
  }
  if (opt.cells != 0) {
    char network_config[256];
    std::snprintf(network_config, sizeof(network_config),
                  "cells=%d data-users=%d gps=%d cycles=%d warmup=%d",
                  opt.cells, opt.data_users, opt.gps_users, opt.cycles,
                  opt.warmup);
    const std::string provenance =
        obs::ProvenanceLine("osumac_sim", opt.seed, network_config);
    std::printf("%s\n", provenance.c_str());
    return RunNetwork(opt, provenance);
  }

  char config_text[256];
  if (opt.mac != "osu") {
    std::snprintf(config_text, sizeof(config_text),
                  "mac=%s rho=%g data-users=%d gps=%d cycles=%d warmup=%d "
                  "channel=%s",
                  opt.mac.c_str(), opt.rho, opt.data_users, opt.gps_users,
                  opt.cycles, opt.warmup, opt.channel.c_str());
  } else {
    std::snprintf(config_text, sizeof(config_text),
                  "rho=%g data-users=%d gps=%d cycles=%d warmup=%d channel=%s",
                  opt.rho, opt.data_users, opt.gps_users, opt.cycles,
                  opt.warmup, opt.channel.c_str());
  }
  const std::string provenance =
      obs::ProvenanceLine("osumac_sim", opt.seed, config_text);
  std::printf("%s\n", provenance.c_str());

  std::string spec_error;
  exp::ScenarioSpec spec = SpecFromOptions(opt, &spec_error);
  if (!spec_error.empty()) {
    std::fprintf(stderr, "%s\n", spec_error.c_str());
    return 1;
  }
  // --journal-expect implies journaling even without --journal FILE: the
  // live run still needs its own records to compare against the reference.
  const bool journaling =
      !opt.journal_file.empty() || !opt.journal_expect_file.empty();
  if (journaling) spec.journal_every = opt.journal_every;
  if (opt.mac != "osu") return RunPolicy(opt, spec, provenance);

  exp::ScenarioRun run(spec);
  mac::Cell& cell = run.cell();
  const bool flight = !opt.flight_dir.empty();
  analysis::ProtocolAuditor auditor;
  // The flight recorder's trigger policy watches the auditor, so arming it
  // implies auditing even without --audit (violations just aren't printed).
  if (opt.audit || flight) cell.AddObserver(&auditor);

  // Self-profiling: install for the rest of main (all run phases) so every
  // zone — population, warm-up, measured cycles, finish — lands in one
  // aggregated tree.  A null install is a no-op, so unprofiled runs pay
  // only the thread-local null check per zone.
  obs::Profiler profiler;
  const obs::Profiler::ThreadScope profile_scope(
      opt.profile_file.empty() ? nullptr : &profiler);

  run.BuildPopulation();
  run.StartWorkloads();
  run.Warmup();

  // Attach the trace only for the measured cycles, so the reconstructed
  // timeline and the figure metrics cover exactly the same window.  Size the
  // ring generously so nothing is overwritten mid-run (a dropped event would
  // make the occupancy reconstruction partial).  The flight recorder rides
  // on the same trace even when --trace wasn't requested.
  obs::EventTrace trace(
      std::max<std::size_t>(obs::EventTrace::kDefaultCapacity,
                            static_cast<std::size_t>(opt.cycles) * 512));
  const bool tracing = !opt.trace_file.empty();
  // Journaled runs also attach the trace so the journal's `events`
  // component carries a live fingerprint; a reference recorded with
  // --journal then agrees with a later --journal-expect --flight-dir run
  // on trace presence (without this, events would be 0 on one side only).
  if (tracing || flight || journaling) cell.AttachTrace(&trace);
  obs::WallTimerRegistry wall_timers;
  if (opt.timers) cell.simulator().AttachWallTimers(&wall_timers);

  obs::FlightRecorder recorder(
      obs::FlightRecorder::Config{static_cast<std::size_t>(opt.flight_cycles)});
  obs::MetricsRegistry flight_registry;
  analysis::FlightRecorderObserver flight_observer(&recorder, &auditor);
  if (flight) {
    metrics::RegisterCellMetrics(flight_registry, cell);
    recorder.AttachTrace(&trace);
    recorder.AttachRegistry(&flight_registry);
    recorder.AttachSlo(&cell.slo());
    recorder.SetScenario(config_text);
    recorder.SetProvenance(provenance);
    flight_observer.SetDumpDir(opt.flight_dir);
    cell.AddObserver(&flight_observer);
  }

  // Journal expectation: installed after Warmup() (which created the
  // journal) and before the measured cycles, so the first mismatching
  // record trips the flight recorder while the trace window is still warm.
  obs::LoadedJournal expect;
  std::size_t expect_count = 0;
  bool expecting = false;
  long long diverged_cycle = -1;
  int diverged_component = -2;
  if (!opt.journal_expect_file.empty()) {
    if (!obs::LoadJournalJsonl(opt.journal_expect_file, &expect)) {
      std::fprintf(stderr, "cannot read reference journal '%s'\n",
                   opt.journal_expect_file.c_str());
      return 1;
    }
    expecting = true;
    std::vector<obs::JournalRecord> reference;
    for (std::size_t c = 0; c < expect.cell_ids.size(); ++c) {
      if (expect.cell_ids[c] == 0) reference = expect.cell_records[c];
    }
    expect_count = reference.size();
    run.journal()->AddCell(0).ExpectReference(
        std::move(reference),
        [&](const obs::JournalRecord& live, const obs::JournalRecord&,
            int component) {
          diverged_cycle = static_cast<long long>(live.cycle);
          diverged_component = component;
          if (flight) {
            char reason[128];
            std::snprintf(
                reason, sizeof reason,
                "journal divergence: cycle %lld: %s hash diverged",
                static_cast<long long>(live.cycle),
                component >= 0 && component < obs::kJournalComponentCount
                    ? obs::kJournalComponents[component]
                    : "chain");
            recorder.Trip(reason, live.cycle);
          }
        });
  }
  if (opt.fault_cycle_set) cell.PerturbRngAt(opt.fault_cycle);

  run.Measure();
  const exp::RunResult result = run.Finish();

  const metrics::FigureMetrics& m = result.figure;
  const mac::BsCounters& bs = result.bs;
  std::printf("==== osumac_sim: rho=%.2f users=%d gps=%d cycles=%d channel=%s ====\n",
              opt.rho, opt.data_users, opt.gps_users, opt.cycles, opt.channel.c_str());
  std::printf("utilization            %8.3f\n", m.utilization);
  std::printf("packet delay           %8.2f cycles (p95 %.2f)\n",
              m.mean_packet_delay_cycles, m.p95_packet_delay_cycles);
  std::printf("message delay          %8.2f cycles\n", m.mean_message_delay_cycles);
  std::printf("collision probability  %8.3f\n", m.collision_probability);
  std::printf("reservation latency    %8.2f cycles\n", m.mean_reservation_latency);
  std::printf("control overhead       %8.3f\n", m.control_overhead);
  std::printf("fairness (Jain)        %8.4f\n", m.fairness_index);
  std::printf("2nd-CF gain            %8.1f%%\n", 100 * m.second_cf_gain);
  std::printf("data slots used        %8.2f per cycle\n", m.avg_data_slots_used);
  std::printf("drop rate              %8.3f\n", m.message_drop_rate);
  if (opt.gps_users > 0) {
    std::printf("GPS max access delay   %8.2f s (bound 4 s)\n", m.gps_access_delay_max_s);
    std::printf("GPS reports/bus/cycle  %8.3f\n", m.gps_reports_per_bus_per_cycle);
  }
  if (bs.decode_failures > 0 || bs.gps_packets_failed > 0) {
    std::printf("uplink decode failures %8lld (+%lld GPS)\n",
                static_cast<long long>(bs.decode_failures),
                static_cast<long long>(bs.gps_packets_failed));
  }
  if (opt.downlink_rho > 0) {
    std::printf("downlink msg delay     %8.2f cycles, lost packets %lld, retx %lld\n",
                result.downlink_mean_delay_cycles,
                static_cast<long long>(result.forward_packets_lost),
                static_cast<long long>(bs.forward_retransmissions));
  }
  if (tracing) {
    std::ofstream out(opt.trace_file);
    if (!out) {
      std::fprintf(stderr, "cannot open trace file '%s'\n", opt.trace_file.c_str());
      return 1;
    }
    if (opt.trace_format == "chrome") {
      obs::WriteChromeTrace(out, trace, provenance);
    } else if (opt.trace_format == "jsonl") {
      obs::WriteJsonl(out, trace);
    } else {
      obs::WriteTimeline(out, trace);
    }
    std::printf("trace                  %8lld events -> %s (%s)\n",
                static_cast<long long>(trace.size()), opt.trace_file.c_str(),
                opt.trace_format.c_str());
    if (trace.dropped() > 0) {
      std::printf("trace dropped          %8lld (ring wrapped; timeline partial)\n",
                  static_cast<long long>(trace.dropped()));
    }
    const obs::Timeline timeline = obs::ReconstructTimeline(trace);
    std::printf("timeline utilization   %8.6f (cell %8.6f)\n",
                timeline.PaperUtilization(), cell.metrics().Utilization());
    std::printf("reverse busy fraction  %8.3f, forward %8.3f\n",
                timeline.ReverseBusyFraction(), timeline.ForwardBusyFraction());
    const Tick guard = timeline.MinGuardObserved();
    if (!timeline.min_tx_rx_gap.empty()) {
      std::printf("min TX/RX switch gap   %8.1f ms (guard %.1f ms)\n",
                  1e3 * static_cast<double>(guard) / kTicksPerSecond,
                  1e3 * static_cast<double>(phy::kHalfDuplexSwitchTicks) /
                      kTicksPerSecond);
    }
  }
  bool journal_mismatch = false;
  if (journaling) {
    const obs::RunJournal& journal = *run.journal();
    if (!opt.journal_file.empty()) {
      if (!obs::WriteJournalJsonl(journal, opt.journal_file, provenance)) {
        std::fprintf(stderr, "cannot open journal file '%s'\n",
                     opt.journal_file.c_str());
        return 1;
      }
      std::printf("journal                %8lld records -> %s (every %d, signature %s)\n",
                  static_cast<long long>(journal.cells().front()->recorded()),
                  opt.journal_file.c_str(), journal.every(),
                  obs::JournalHex(journal.Signature()).c_str());
    }
    if (expecting) {
      const obs::CellJournal& cj = *journal.cells().front();
      if (diverged_cycle >= 0) {
        std::printf("journal                DIVERGED at cycle %lld (%s hash)\n",
                    diverged_cycle,
                    diverged_component >= 0 &&
                            diverged_component < obs::kJournalComponentCount
                        ? obs::kJournalComponents[diverged_component]
                        : "chain");
        journal_mismatch = true;
      } else if (static_cast<std::size_t>(cj.recorded()) != expect_count) {
        std::printf("journal                record count %lld != reference %lld\n",
                    static_cast<long long>(cj.recorded()),
                    static_cast<long long>(expect_count));
        journal_mismatch = true;
      } else {
        std::printf("journal                matches reference (%lld records)\n",
                    static_cast<long long>(cj.recorded()));
      }
    }
  }
  if (!opt.metrics_file.empty()) {
    obs::MetricsRegistry registry;
    metrics::RegisterCellMetrics(registry, cell);
    std::ofstream out(opt.metrics_file);
    if (!out) {
      std::fprintf(stderr, "cannot open metrics file '%s'\n",
                   opt.metrics_file.c_str());
      return 1;
    }
    const bool json = opt.metrics_file.size() >= 5 &&
                      opt.metrics_file.rfind(".json") == opt.metrics_file.size() - 5;
    if (json) {
      registry.WriteJson(out);
    } else {
      registry.WriteCsv(out);
    }
    std::printf("metrics                -> %s (%s)\n", opt.metrics_file.c_str(),
                json ? "json" : "csv");
  }
  if (opt.slo) cell.slo().WriteReport(std::cout);
  if (!opt.profile_file.empty() &&
      !WriteProfileFile(opt, profiler, provenance)) {
    return 1;
  }
  if (flight) {
    if (!recorder.tripped() && opt.flight_dump_on_exit) {
      recorder.Trip("exit: --flight-dump-on-exit", cell.current_cycle());
    }
    if (recorder.tripped() && !flight_observer.dumped()) {
      std::string err;
      if (!recorder.Dump(opt.flight_dir, &err)) {
        std::fprintf(stderr, "flight dump failed: %s\n", err.c_str());
        return 1;
      }
    }
    if (!flight_observer.dump_error().empty()) {
      std::fprintf(stderr, "flight dump failed: %s\n",
                   flight_observer.dump_error().c_str());
      return 1;
    }
    if (recorder.tripped()) {
      std::printf("flight                 -> %s (cycle %lld: %s)\n",
                  opt.flight_dir.c_str(),
                  static_cast<long long>(recorder.trip_cycle()),
                  recorder.trip_reason().c_str());
    } else {
      std::printf("flight                 armed, never tripped (no dump)\n");
    }
  }
  if (opt.timers) wall_timers.Report(std::cout);
  if (opt.audit) {
    std::printf("audit                  %s\n", auditor.Report().c_str());
    if (!auditor.violations().empty()) return 2;
  }
  if (journal_mismatch) return 3;
  return 0;
}
