"""Enables ``python3 -m osumac_lint`` (run from the tools/ directory);
``python3 tools/lint.py`` from the repository root is the usual spelling."""
from __future__ import annotations

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
