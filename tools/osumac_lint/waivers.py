"""The waiver ledger: every inline ``lint: allow-<rule>`` comment must be
declared in tools/osumac_lint/waivers.json with a per-file count and a
reason.  The ledger is what makes waivers reviewable: adding a waiver means
editing a JSON file a human reads in the diff and justifying it, and a
removed waiver whose ledger entry lingers (or vice versa) fails the build
instead of rotting.  Reconciliation findings report as rule
``waiver-ledger``:

  * an inline waiver in a file with no ledger entry,
  * a per-file count that no longer matches the inline census,
  * a stale ledger entry with no inline waivers left,
  * a ledger entry for a rule the framework does not know,
  * an entry with a missing or empty reason.
"""
from __future__ import annotations

import json
from collections import Counter

from .engine import Context, Rule
from .scanner import WAIVER_RE

LEDGER_REL = "tools/osumac_lint/waivers.json"
#: Roots whose inline waivers are censused (C++ sources only, so prose in
#: docs/ or .py files may mention waiver comments without waiving
#: anything).  tools/ joined when the raw-clock rule started scanning it.
CENSUS_ROOTS = ("src", "bench", "tools")


def census(ctx: Context) -> Counter:
    """Counts inline waivers as (rule, rel_path) -> count."""
    counts: Counter = Counter()
    for source in ctx.files(*CENSUS_ROOTS):
        for names in source.waivers.values():
            for name in names:
                counts[(name, source.rel)] += 1
    return counts


def load_ledger(ctx: Context):
    """Returns (ledger dict, error string or None)."""
    path = ctx.repo / LEDGER_REL
    if not path.is_file():
        return None, "waiver ledger missing"
    try:
        ledger = json.loads(path.read_text())
    except json.JSONDecodeError as err:
        return None, f"waiver ledger is not valid JSON: {err}"
    if not isinstance(ledger, dict):
        return None, "waiver ledger must be a JSON object keyed by rule name"
    return ledger, None


def make_rule(known_rule_names: set[str]) -> Rule:
    def check(ctx: Context) -> None:
        ledger, error = load_ledger(ctx)
        if ledger is None:
            ctx.finding(LEDGER_REL, 1, error)
            return
        inline = census(ctx)
        declared: set[tuple[str, str]] = set()
        for rule_name, entries in ledger.items():
            if rule_name not in known_rule_names:
                ctx.finding(LEDGER_REL, 1,
                            f"ledger declares waivers for unknown rule "
                            f"`{rule_name}`")
                continue
            for entry in entries:
                rel = entry.get("file", "")
                count = entry.get("count", 0)
                reason = str(entry.get("reason", "")).strip()
                key = (rule_name, rel)
                declared.add(key)
                if not reason:
                    ctx.finding(LEDGER_REL, 1,
                                f"waiver entry for `{rule_name}` in {rel} "
                                "has no reason; every waiver must say why")
                actual = inline.get(key, 0)
                if actual == 0:
                    ctx.finding(LEDGER_REL, 1,
                                f"stale ledger entry: `{rule_name}` declares "
                                f"{count} waiver(s) in {rel} but the file "
                                "has none; delete the entry")
                elif actual != count:
                    ctx.finding(LEDGER_REL, 1,
                                f"waiver count drift: `{rule_name}` declares "
                                f"{count} in {rel} but {actual} inline "
                                "waiver(s) exist; update the ledger (and "
                                "the reason, if it changed)")
        for (rule_name, rel), count in sorted(inline.items()):
            if rule_name not in known_rule_names:
                ctx.finding(rel, 1,
                            f"inline waiver names unknown rule "
                            f"`{rule_name}`")
            elif (rule_name, rel) not in declared:
                ctx.finding(rel, 1,
                            f"{count} inline `lint: allow-{rule_name}` "
                            f"waiver(s) not declared in {LEDGER_REL}; add "
                            "an entry with a reason")

    return Rule(
        name="waiver-ledger",
        summary="inline waivers reconcile against waivers.json "
                "(count + reason)",
        help=__doc__,
        check=check,
    )
