"""Comment- and string-aware source scanning shared by every lint rule.

Each rule sees a ``SourceFile``: the raw lines (for waiver comments and
layout checks), the *code* lines (string contents blanked, ``//`` and
``/* */`` comments removed — so a rule's regex can never fire on prose),
and the per-line inline waivers (``lint: allow-<rule>`` comments).

The stripper is a small character scanner, not a regex, so block comments
spanning lines and quotes inside comments are handled correctly; it is
deliberately tolerant of the constructs it does not model (raw strings,
trigraphs) because the codebase style forbids them anyway.
"""
from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

#: Inline waiver comment: ``lint: allow-<rule>`` anywhere on the line.
WAIVER_RE = re.compile(r"lint:\s*allow-([a-z][a-z0-9-]*)")


def strip_code(lines: list[str]) -> list[str]:
    """Returns `lines` with comments removed and string/char literal
    contents blanked (the quotes themselves are kept, mirroring the
    behaviour rules were written against)."""
    out: list[str] = []
    in_block = False  # inside a /* ... */ comment carried across lines
    for line in lines:
        kept: list[str] = []
        i = 0
        n = len(line)
        quote = ""  # the active string/char delimiter, if any
        while i < n:
            c = line[i]
            nxt = line[i + 1] if i + 1 < n else ""
            if in_block:
                if c == "*" and nxt == "/":
                    in_block = False
                    i += 2
                else:
                    i += 1
                continue
            if quote:
                if c == "\\":
                    i += 2  # skip the escaped character
                    continue
                if c == quote:
                    kept.append(c)
                    quote = ""
                i += 1
                continue
            if c == "/" and nxt == "/":
                break  # line comment: rest of the line is prose
            if c == "/" and nxt == "*":
                in_block = True
                i += 2
                continue
            if c in ('"', "'"):
                quote = c
            kept.append(c)
            i += 1
        out.append("".join(kept))
    return out


@dataclass
class SourceFile:
    """One scanned file: raw text, comment/string-stripped text, waivers."""

    path: Path          #: absolute path
    rel: str            #: repo-relative POSIX path (the reporting key)
    raw_lines: list[str] = field(default_factory=list)
    code_lines: list[str] = field(default_factory=list)
    #: 1-based line number -> rule names waived on that line
    waivers: dict[int, set[str]] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path, rel: str) -> "SourceFile":
        raw = path.read_text().splitlines()
        waivers: dict[int, set[str]] = {}
        for lineno, line in enumerate(raw, 1):
            names = set(WAIVER_RE.findall(line))
            if names:
                waivers[lineno] = names
        return cls(path=path, rel=rel, raw_lines=raw,
                   code_lines=strip_code(raw), waivers=waivers)

    def waived(self, lineno: int, rule: str) -> bool:
        return rule in self.waivers.get(lineno, ())

    def lines(self):
        """Yields (lineno, code_line, raw_line), 1-based."""
        for i, raw in enumerate(self.raw_lines, 1):
            yield i, self.code_lines[i - 1], raw
