"""Command-line entry point; ``python3 tools/lint.py`` lands here.

Exit status is 1 when any finding survives the inline waivers and the
ledger, 0 on a clean tree.
"""
from __future__ import annotations

import argparse
import sys
from pathlib import Path

from . import waivers
from .engine import run_rules
from .output import render_json, render_sarif, render_text
from .rules import ALL_RULES


def build_rules():
    known = {r.name for r in ALL_RULES}
    return ALL_RULES + [waivers.make_rule(known)]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="osumac-lint",
        description="Project-specific static checks for the OSU-MAC "
                    "codebase (docs/STATIC_ANALYSIS.md).")
    parser.add_argument("--repo", type=Path,
                        default=Path(__file__).resolve().parents[2],
                        help="repository root (default: two levels up)")
    parser.add_argument("--json", type=Path, metavar="FILE",
                        help="also write findings as JSON")
    parser.add_argument("--sarif", type=Path, metavar="FILE",
                        help="also write findings as SARIF 2.1.0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule names and summaries, then exit")
    args = parser.parse_args(argv)

    rules = build_rules()
    if args.list_rules:
        width = max(len(r.name) for r in rules)
        for rule in rules:
            print(f"{rule.name:<{width}}  {rule.summary}")
        return 0

    ctx = run_rules(args.repo, rules)
    findings = sorted(ctx.findings,
                      key=lambda f: (f.rel_path, f.line, f.rule))
    if args.json:
        args.json.write_text(render_json(findings, rules))
    if args.sarif:
        args.sarif.write_text(render_sarif(findings, rules))
    if findings:
        print(render_text(findings))
        print(f"\nlint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint: clean")
    return 0
