"""Rule registry and the scan context rules run against.

A rule is a module exposing a ``Rule`` object: a name, a one-line summary
(used by ``--list-rules`` and the SARIF rule metadata), a longer help text,
and a ``check(ctx)`` callable that reports findings through the context.

The ``Context`` owns file loading (cached, so twelve rules do not re-read
the tree twelve times), finding collection, and the inline-waiver contract:
``ctx.finding(...)`` silently drops a finding whose line carries a
``lint: allow-<rule>`` comment — the waiver ledger (waivers.py) separately
guarantees every such comment is declared with a reason.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from .scanner import SourceFile

#: Suffixes scanned by default (C++ sources and headers).
CXX_SUFFIXES = (".cc", ".h")


@dataclass(frozen=True)
class Finding:
    rule: str
    rel_path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.rel_path}:{self.line}: [{self.rule}] {self.message}"


@dataclass(frozen=True)
class Rule:
    name: str
    summary: str
    help: str
    check: Callable[["Context"], None]


@dataclass
class Context:
    repo: Path
    findings: list[Finding] = field(default_factory=list)
    _cache: dict[str, SourceFile] = field(default_factory=dict)
    _active_rule: str = ""

    # --- file access --------------------------------------------------------

    def file(self, rel: str) -> SourceFile | None:
        """Loads one repo-relative file (None if absent)."""
        if rel not in self._cache:
            path = self.repo / rel
            if not path.is_file():
                return None
            self._cache[rel] = SourceFile.load(path, rel)
        return self._cache[rel]

    def files(self, *roots: str,
              suffixes: tuple[str, ...] = CXX_SUFFIXES) -> list[SourceFile]:
        """All files under the given repo-relative roots, sorted by path."""
        out: list[SourceFile] = []
        for root in roots:
            base = self.repo / root
            for path in sorted(base.rglob("*")):
                if path.suffix in suffixes and path.is_file():
                    rel = path.relative_to(self.repo).as_posix()
                    loaded = self.file(rel)
                    if loaded is not None:
                        out.append(loaded)
        return out

    # --- reporting ----------------------------------------------------------

    def finding(self, source: SourceFile | str, lineno: int, message: str) -> None:
        """Records a finding unless the line waives the active rule."""
        if isinstance(source, SourceFile):
            if source.waived(lineno, self._active_rule):
                return
            rel = source.rel
        else:
            rel = source
        self.findings.append(
            Finding(rule=self._active_rule, rel_path=rel, line=lineno,
                    message=message))


def run_rules(repo: Path, rules: list[Rule]) -> Context:
    ctx = Context(repo=repo)
    for rule in rules:
        ctx._active_rule = rule.name
        rule.check(ctx)
    ctx._active_rule = ""
    return ctx
