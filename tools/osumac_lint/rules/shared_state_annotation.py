"""Classes that own a mutex or an atomic (the signature of cross-thread
shared state) must annotate the rest of their mutable members: each data
member either carries GUARDED_BY/PT_GUARDED_BY, or is itself a mutex, an
atomic, const, static, or a reference.  An unannotated plain member in such
a class is exactly the state -Wthread-safety cannot check and TSan can only
catch dynamically — the next reader has no machine-checked answer to "who
may touch this, under which lock".

The parser is deliberately conservative: it only inspects single-line
member declarations at class scope whose name follows the trailing-
underscore convention, so multi-line declarations and locals never
false-positive.  Checking is structural (the annotation macro must be
present); proving the annotations sound is Clang's job in the
thread-safety CI lane."""
from __future__ import annotations

import re

from ..engine import Context, Rule
from ..scanner import SourceFile

CLASS_OPEN = re.compile(r"\b(?:class|struct)\b[^;{]*{")
# A single-line data-member declaration: a type, a trailing-underscore name,
# then an annotation, initializer, or terminator.
MEMBER = re.compile(
    r"^\s*(?:mutable\s+)?(?P<type>\S[^;=]*?)\s+(?P<name>[A-Za-z_]\w*_)\s*"
    r"(?P<tail>GUARDED_BY\s*\(|PT_GUARDED_BY\s*\(|[;={])")
MUTEX_TYPE = re.compile(
    r"\b(?:osumac::)?Mutex\b|\bstd::(?:recursive_|shared_|timed_)?mutex\b")
ATOMIC_TYPE = re.compile(r"\bstd::atomic\b")
# Internally-synchronized primitives: owning one marks the class as shared,
# but the member itself needs no GUARDED_BY (it *is* the synchronization).
CONDVAR_TYPE = re.compile(
    r"\b(?:osumac::)?CondVar\b|\bstd::condition_variable(?:_any)?\b")
EXEMPT_TYPE = re.compile(r"^(?:static\b|const\b)|&\s*$")


def _class_members(source: SourceFile):
    """Yields (class_first_line, [(lineno, match), ...]) per class, collecting
    only single-line member declarations at that class's own scope."""
    depth = 0
    # Stack of (is_class_frame, body_depth, first_line, members).
    stack: list[tuple[bool, int, int, list]] = []
    for lineno, code, _raw in source.lines():
        if stack and depth == stack[-1][1] and stack[-1][0]:
            m = MEMBER.match(code)
            if m and "(" not in m.group("type"):
                stack[-1][3].append((lineno, m))
        opens_class = bool(CLASS_OPEN.search(code))
        for ch in code:
            if ch == "{":
                depth += 1
                stack.append((opens_class, depth, lineno, []))
                opens_class = False  # only the first brace opens the class body
            elif ch == "}":
                if stack:
                    frame = stack.pop()
                    if frame[0] and frame[3]:
                        yield frame[2], frame[3]
                depth = max(0, depth - 1)
    while stack:
        frame = stack.pop()
        if frame[0] and frame[3]:
            yield frame[2], frame[3]


def check(ctx: Context) -> None:
    for source in ctx.files("src"):
        for _first_line, members in _class_members(source):
            has_sync = any(
                MUTEX_TYPE.search(m.group("type"))
                or ATOMIC_TYPE.search(m.group("type"))
                for _ln, m in members)
            if not has_sync:
                continue
            for lineno, m in members:
                type_text = m.group("type")
                if m.group("tail").startswith(("GUARDED_BY", "PT_GUARDED_BY")):
                    continue
                if (MUTEX_TYPE.search(type_text)
                        or ATOMIC_TYPE.search(type_text)
                        or CONDVAR_TYPE.search(type_text)
                        or EXEMPT_TYPE.search(type_text)):
                    continue
                ctx.finding(source, lineno,
                            f"member `{m.group('name')}` sits next to a "
                            "mutex/atomic but carries no thread-safety "
                            "annotation; add GUARDED_BY(mu_), make it "
                            "atomic/const, or move it out of the shared "
                            "class")


RULE = Rule(
    name="shared-state-annotation",
    summary="members beside a mutex/atomic must carry GUARDED_BY or be "
            "atomic/const",
    help=__doc__,
    check=check,
)
