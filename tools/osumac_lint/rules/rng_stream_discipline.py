"""Every RNG in src/ must trace back to a named exp::seed stream: no
Rng/SplitMix64Rng constructed from an integer literal and no raw SplitMix64()
call on a literal outside src/exp/ (where DeriveSeed and the stream registry
live), and no standard-library engines (std::mt19937*, std::random_device,
std::default_random_engine) outside common/rng.h.  A literal seed is an
anonymous stream: it silently decouples a consumer from the scenario seed,
so two runs with different `--seed` values share "random" draws and the
cross-seed confidence intervals in the figures lie.  Additive per-index
seed arithmetic (`seed + i * constant`) is banned for the same family of
reasons: distinct (seed, index) pairs collide -- seed 7 index 2 and seed
7 + 2*c index 0 are the same stream -- so sibling consumers must derive
sub-streams through DeriveSubstreamSeed (common/rng.h) or exp::DeriveSeed,
which mix the root seed before offsetting.  Tests and benches may use
literal seeds freely (they pin exact draw sequences on purpose)."""
from __future__ import annotations

import re

from ..engine import Context, Rule

# An Rng/SplitMix64Rng object whose seed expression starts with an integer
# literal: declarations (`Rng r(5)`, `Rng r{5}`), temporaries (`Rng(5)`),
# and member-initializers (`rng_(7)` is not matched -- the member's type is
# unknown -- but `rng_(Rng(7))` and `rng_{SplitMix64Rng{7}}` are).
LITERAL_SEED_CTOR = re.compile(
    r"\b(?:SplitMix64Rng|Rng)\b(?:\s+[A-Za-z_]\w*)?\s*[({]\s*\d")
# A raw SplitMix64() mix of a literal: an ad-hoc stream derivation that
# bypasses exp::DeriveSeed's gamma spacing.
LITERAL_SPLITMIX_CALL = re.compile(r"\bSplitMix64\s*\(\s*\d")
# Additive sibling-stream derivation: an expression that offsets a seed by
# a scaled index (`seed + i * 0x9E3779B9u`, `config.seed + cell * 12345`).
# The offset aliases across (seed, index) pairs; DeriveSubstreamSeed mixes
# the root first so siblings can never collide.
ADDITIVE_SEED = re.compile(
    r"\b(?:[A-Za-z_]\w*\.)?seed_?\s*\+[^;,]*\*\s*"
    r"(?:0[xX][0-9A-Fa-f]+|\d+)")
STD_ENGINE = re.compile(
    r"\bstd::(?:mt19937(?:_64)?|random_device|default_random_engine|"
    r"minstd_rand0?|ranlux\d+(?:_base)?|knuth_b)\b")

EXEMPT_PREFIXES = ("src/exp/", "src/common/rng.h")
ENGINE_HOME = "src/common/rng.h"


def check(ctx: Context) -> None:
    for source in ctx.files("src"):
        exempt = any(source.rel.startswith(p) for p in EXEMPT_PREFIXES)
        for lineno, code, _raw in source.lines():
            if not exempt:
                if LITERAL_SEED_CTOR.search(code):
                    ctx.finding(source, lineno,
                                "RNG seeded from an integer literal; derive "
                                "the seed from a named stream "
                                "(exp::DeriveSeed / Rng::Fork) so every draw "
                                "follows the scenario seed")
                elif LITERAL_SPLITMIX_CALL.search(code):
                    ctx.finding(source, lineno,
                                "SplitMix64() mixed from a literal; stream "
                                "derivation belongs to exp::DeriveSeed so "
                                "gamma spacing stays collision-free")
                elif ADDITIVE_SEED.search(code):
                    ctx.finding(source, lineno,
                                "additive seed arithmetic (`seed + index * "
                                "constant`) aliases across (seed, index) "
                                "pairs; derive sibling streams with "
                                "DeriveSubstreamSeed (common/rng.h) or "
                                "exp::DeriveSeed")
            if source.rel != ENGINE_HOME and STD_ENGINE.search(code):
                ctx.finding(source, lineno,
                            "standard-library RNG engine outside "
                            "common/rng.h; use common::Rng so seeding and "
                            "forking stay observable")


RULE = Rule(
    name="rng-stream-discipline",
    summary="RNG seeds derive from named exp::seed streams, never literals",
    help=__doc__,
    check=check,
)
