"""No printf/std::cout/std::cerr/puts in src/: library code reports through
return values, the metrics registry, the event trace, or ostream& parameters
the caller supplies.  Exempt: src/obs/ (the sinks ARE the output path),
src/common/logging.cc (the logging backend) and src/metrics/experiment.cc
(the table printer).  Tools, benches and tests print freely."""
from __future__ import annotations

import re

from ..engine import Context, Rule

RAW_STDOUT = re.compile(
    r"(?<![\w_.:])(?:std::)?(?:f?printf|puts|putchar)\s*\(|std::c(?:out|err)\b")
EXEMPT = ("src/obs/", "src/common/logging.cc", "src/metrics/experiment.cc")


def check(ctx: Context) -> None:
    for source in ctx.files("src"):
        if any(source.rel.startswith(e) for e in EXEMPT):
            continue
        for lineno, code, _raw in source.lines():
            if RAW_STDOUT.search(code):
                ctx.finding(source, lineno,
                            "direct stdout/stderr output in library code; "
                            "report through the obs sinks, the metrics "
                            "registry, or an ostream& the caller supplies")


RULE = Rule(
    name="raw-stdout",
    summary="no direct stdout/stderr output in library code",
    help=__doc__,
    check=check,
)
