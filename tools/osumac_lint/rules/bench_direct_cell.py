"""No direct mac::Cell / mac::Network construction in bench/: benches build
populations through the scenario engine (exp::ScenarioSpec + SweepRunner /
ScenarioRun) so every benchmark point is declarative, seed-derived and
sweep-parallel.  Multi-cell/extension harnesses the engine does not model
(e.g. MultiChannelCell) are not affected."""
from __future__ import annotations

import re

from ..engine import Context, Rule

# A Cell/Network object built directly: stack declaration, make_unique, or
# new-expression.  \b keeps MultiChannelCell/CellConfig out of scope.
DIRECT_CELL = re.compile(
    r"(?:^|[^\w:])(?:mac::)?\b(Cell|Network)\s+[A-Za-z_]\w*\s*[({]"
    r"|make_unique<\s*(?:mac::)?(Cell|Network)\s*>"
    r"|new\s+(?:mac::)?(Cell|Network)\s*[({]")


def check(ctx: Context) -> None:
    for source in ctx.files("bench"):
        for lineno, code, _raw in source.lines():
            if DIRECT_CELL.search(code):
                ctx.finding(source, lineno,
                            "benches must drive Cell/Network through the "
                            "scenario engine (exp::ScenarioSpec + "
                            "SweepRunner/ScenarioRun), not construct them "
                            "directly")


RULE = Rule(
    name="bench-direct-cell",
    summary="benches go through the scenario engine, not raw Cell/Network",
    help=__doc__,
    check=check,
)
