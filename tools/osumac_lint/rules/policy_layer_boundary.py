"""The MAC-policy layer boundary: policy tenants (src/mac/policies/) plan
cycles purely over the views and plan structs of mac/mac_policy.h — they
must not include the channel substrate (phy/), the simulator (sim/), the
scenario engine (exp/) or the standalone baseline harnesses (baselines/).
A policy that reaches below the seam can perturb the substrate's RNG
streams or channel state and silently break the byte-identical guarantee
the PolicyCell driver provides for head-to-head MAC comparisons.

Conversely the substrate layer (mac/substrate.*, mac/mac_policy.h,
mac/policy_cell.*) must not include concrete tenants (mac/policies/); the
single documented exemption is the factory in mac/mac_policy.cc, where
name -> tenant resolution has to live so no other substrate file ever
names a policy.  Port adapters that wrap a baseline protocol's parameter
block (RqmaPolicy over baselines::Rqma::Params) carry an inline waiver
recorded in the ledger."""
from __future__ import annotations

import re

from ..engine import Context, Rule

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')

#: Layers a policy tenant must never reach into.
POLICY_FORBIDDEN = ("phy/", "sim/", "exp/", "baselines/")
POLICY_ROOT = "src/mac/policies/"

#: The substrate-layer seam files; none may know a concrete tenant.  The
#: factory (src/mac/mac_policy.cc) is deliberately absent: it is the one
#: place name -> tenant resolution lives.
SUBSTRATE_FILES = ("src/mac/substrate.h", "src/mac/substrate.cc",
                   "src/mac/mac_policy.h", "src/mac/policy_cell.h",
                   "src/mac/policy_cell.cc")


def check(ctx: Context) -> None:
    for source in ctx.files("src/mac"):
        in_policies = source.rel.startswith(POLICY_ROOT)
        in_substrate = source.rel in SUBSTRATE_FILES
        if not in_policies and not in_substrate:
            continue
        # Match the raw line: the scanner blanks string literals in the
        # stripped view, which would erase every quoted include path.
        for lineno, _code, raw in source.lines():
            m = INCLUDE_RE.match(raw)
            if m is None:
                continue
            header = m.group(1)
            if in_policies:
                for prefix in POLICY_FORBIDDEN:
                    if header.startswith(prefix):
                        ctx.finding(source, lineno,
                                    f"policy tenant includes \"{header}\": "
                                    "policies plan over the mac_policy.h "
                                    "views only and never reach the "
                                    f"{prefix.rstrip('/')} layer")
            elif header.startswith("mac/policies/"):
                ctx.finding(source, lineno,
                            f"substrate layer includes concrete tenant "
                            f"\"{header}\"; only the factory "
                            "(mac/mac_policy.cc) may name policies")


RULE = Rule(
    name="policy-layer-boundary",
    summary="policies never include phy/sim/exp/baselines; the substrate "
            "never includes concrete policies",
    help=__doc__,
    check=check,
)
