"""CI must select sanitizers via -DOSUMAC_SANITIZE=... instead of injecting
raw -fsanitize flags, so local reproduction is one documented cmake option."""
from __future__ import annotations

from ..engine import Context, Rule

CI_FILE = ".github/workflows/ci.yml"


def check(ctx: Context) -> None:
    source = ctx.file(CI_FILE)
    if source is None:
        ctx.finding(CI_FILE, 1, "CI workflow file is missing")
        return
    for lineno, raw in enumerate(source.raw_lines, 1):
        if "-fsanitize" in raw:
            ctx.finding(source, lineno,
                        "select sanitizers with -DOSUMAC_SANITIZE=... so the "
                        "CI configuration is reproducible locally")


RULE = Rule(
    name="raw-sanitize",
    summary="CI selects sanitizers via -DOSUMAC_SANITIZE, never raw flags",
    help=__doc__,
    check=check,
)
