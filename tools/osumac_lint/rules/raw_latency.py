"""No ad-hoc latency arithmetic (+/-) on raw obs event timestamps
(`.tick`, `.span.begin`, `.span.end`) in src/ outside src/obs/: delay and
gap measurement goes through the span reducer / SloMonitor API so every
latency number shares one definition of "when".  Plain reads and
assignments of those fields (e.g. the auditor stamping AuditViolation.tick)
are fine; a line carrying a `lint: allow-raw-latency` waiver comment is
exempt."""
from __future__ import annotations

import re

from ..engine import Context, Rule

# An event timestamp field with +/- arithmetic touching it on either side.
# Requiring the operator adjacent keeps plain reads and assignments
# (`violation.tick = ev.tick;`) out of scope.
RAW_LATENCY = re.compile(
    r"\.(?:tick|span\.(?:begin|end))\b\s*[-+][^-+=]"   # ev.tick - x
    r"|[-+]\s*[\w\]\)]+(?:\.\w+)*\.(?:tick|span\.(?:begin|end))\b")  # x - ev.tick


def check(ctx: Context) -> None:
    for source in ctx.files("src"):
        if source.rel.startswith("src/obs/"):
            continue  # the span/SLO reducers ARE the sanctioned arithmetic
        for lineno, code, _raw in source.lines():
            if RAW_LATENCY.search(code):
                ctx.finding(source, lineno,
                            "latency arithmetic on raw event timestamps; "
                            "compute delays through the span reducer or "
                            "SloMonitor (src/obs) so every latency shares "
                            "one definition")


RULE = Rule(
    name="raw-latency",
    summary="no ad-hoc +/- arithmetic on raw event timestamps outside obs",
    help=__doc__,
    check=check,
)
