"""Deterministic iteration order in src/: no std::unordered_map /
std::unordered_set (hash order varies across libstdc++ versions, seeds and
load factors), and no pointer-keyed std::map/std::set (address order varies
across runs and allocators).  Anything that iterates such a container into
metrics, traces, RunResult rows or figure JSON produces byte-different
artifacts between identical runs, which breaks the replay-digest and
jobs-1-vs-jobs-N equality gates.  Key by a stable id (sequence number, node
id) in an ordered container instead.  A container that is provably
lookup-only (never iterated) may carry a `lint: allow-ordered-iteration`
waiver, declared with a reason in the waiver ledger."""
from __future__ import annotations

import re

from ..engine import Context, Rule

UNORDERED = re.compile(r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<")
# A raw-pointer key: `std::map<Foo*, ...>` / `std::set<const Foo*>` (skipping
# cv-qualifiers and nested namespace qualification before the `*`).
POINTER_KEYED = re.compile(
    r"\bstd::(?:multi)?(?:map|set)\s*<\s*(?:const\s+)?[A-Za-z_]\w*"
    r"(?:::\w+)*\s*(?:const\s*)?\*")


def check(ctx: Context) -> None:
    for source in ctx.files("src"):
        for lineno, code, raw in source.lines():
            if raw.lstrip().startswith("#"):
                continue  # #include <unordered_map> names the header, not a use
            if UNORDERED.search(code):
                ctx.finding(source, lineno,
                            "std::unordered_* container in src/; hash order "
                            "is not deterministic across platforms -- key an "
                            "ordered container by a stable id, or waive with "
                            "`lint: allow-ordered-iteration` if the container "
                            "is lookup-only and never iterated")
            if POINTER_KEYED.search(code):
                ctx.finding(source, lineno,
                            "pointer-keyed ordered container; address order "
                            "varies across runs, so iteration feeds "
                            "nondeterminism into anything it touches -- key "
                            "by a stable id instead")


RULE = Rule(
    name="ordered-iteration",
    summary="no unordered_* or pointer-keyed containers in src/",
    help=__doc__,
    check=check,
)
