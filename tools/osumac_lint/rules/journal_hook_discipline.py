"""Run-journal hash hooks stay cheap: every function in src/mac/ or
src/obs/ whose *name* contains ``Journal`` runs on the per-cycle hot path
(JournalCycle, JournalHashSlo, AttachJournal, the CellJournal fold), so
its body must not construct a std::vector (reusing the hot-alloc
construction scanner) and must not read the host clock (reusing the
raw-clock pattern).  The serialization endpoints — names containing
``Jsonl`` — are exempt: they run once at teardown, not once per cycle.
A line carrying a `lint: allow-journal-hook-discipline` waiver comment is
exempt."""
from __future__ import annotations

import re

from ..engine import Context, Rule
from .hot_alloc import constructs_vector
from .raw_clock import RAW_CLOCK

#: A function *name* containing Journal, immediately called/declared.
#: Qualified definitions (``Cell::JournalCycle(``) match on the final
#: name token; ``obs::CellJournal*`` parameter types do not (no paren).
JOURNAL_NAME = re.compile(r"\b(\w*Journal\w*)\s*\(")

ROOTS = ("src/mac", "src/obs")


def _definition_body(flat: str, open_paren: int) -> tuple[int, int] | None:
    """If the call-or-declaration starting at `flat[open_paren] == '('` is a
    function *definition*, returns (body_open, body_close) indices of its
    braces in `flat`; otherwise None.

    After the parameter list's closing paren the next structural character
    decides: `{` (possibly past const/noexcept/override/trailing-return or
    a constructor's member-init list, none of which contain a semicolon)
    means a definition; `;` means a declaration or an ordinary call
    statement.
    """
    depth = 0
    i = open_paren
    n = len(flat)
    while i < n:  # find the matching close paren
        if flat[i] == "(":
            depth += 1
        elif flat[i] == ")":
            depth -= 1
            if depth == 0:
                break
        i += 1
    else:
        return None
    i += 1
    while i < n and flat[i] not in "{;":  # member-init lists pass through
        i += 1
    if i >= n or flat[i] == ";":
        return None
    body_open = i
    depth = 0
    while i < n:
        if flat[i] == "{":
            depth += 1
        elif flat[i] == "}":
            depth -= 1
            if depth == 0:
                return body_open, i
        i += 1
    return body_open, n - 1  # unterminated (truncated file): take the rest


def check(ctx: Context) -> None:
    for source in ctx.files(*ROOTS):
        lines = list(source.lines())
        # Flatten the code lines so signatures and bodies can span lines;
        # line_of maps a flat offset back to its 1-based source line.
        offsets, flat_parts, line_of = [], [], []
        pos = 0
        for lineno, code, _raw in lines:
            offsets.append(pos)
            flat_parts.append(code + "\n")
            line_of.append((pos, lineno))
            pos += len(code) + 1
        flat = "".join(flat_parts)

        def lineno_at(flat_pos: int) -> int:
            lo, hi = 0, len(line_of) - 1
            while lo < hi:
                mid = (lo + hi + 1) // 2
                if line_of[mid][0] <= flat_pos:
                    lo = mid
                else:
                    hi = mid - 1
            return line_of[lo][1]

        for idx, (lineno, code, _raw) in enumerate(lines):
            for m in JOURNAL_NAME.finditer(code):
                name = m.group(1)
                if "Jsonl" in name:
                    continue  # teardown-time serialization, not a hook
                open_paren = offsets[idx] + m.end() - 1
                body = _definition_body(flat, open_paren)
                if body is None:
                    continue  # declaration or call site, not a definition
                body_open, body_close = body
                for j, (ln, body_code, _r) in enumerate(lines):
                    start = offsets[j]
                    end = start + len(body_code)
                    if end <= body_open or start > body_close:
                        continue
                    if constructs_vector(body_code):
                        ctx.finding(source, ln,
                                    f"std::vector constructed inside journal "
                                    f"hook {name}(); the per-cycle digest "
                                    f"fold must be allocation-free — hash in "
                                    f"place or hoist the buffer to setup")
                    if RAW_CLOCK.search(body_code):
                        ctx.finding(source, ln,
                                    f"host-clock read inside journal hook "
                                    f"{name}(); journal digests must depend "
                                    f"only on simulated state or replay "
                                    f"comparison breaks")


RULE = Rule(
    name="journal-hook-discipline",
    summary="journal hash hooks are allocation-free and never read the clock",
    help=__doc__,
    check=check,
)
