"""No direct host-clock reads (`std::chrono`, `clock_gettime`,
`gettimeofday`, `timespec_get`) in src/, bench/, or tools/ outside
src/obs/ and src/common/time.h: wall time flows through obs::Stopwatch /
obs::ScopedWallTimer so host-time access stays corralled where
determinism reviews can see it, and simulated time stays Tick-based.  A
line carrying a `lint: allow-raw-clock` waiver comment is exempt."""
from __future__ import annotations

import re

from ..engine import Context, Rule

# A chrono name or a POSIX clock call.  <chrono>/<ctime>/<sys/time.h>
# includes are flagged too: pulling the header in is the first step of
# reading the clock directly.
RAW_CLOCK = re.compile(
    r"std::chrono\b"
    r"|\b(?:clock_gettime|gettimeofday|timespec_get)\s*\("
    r"|<(?:chrono|ctime|sys/time\.h)>")

#: The sanctioned homes for host-time access: the obs wall-clock layer
#: and the simulated-time header.
ALLOWED = ("src/obs/", "src/common/time.h")


def check(ctx: Context) -> None:
    for source in ctx.files("src", "bench", "tools"):
        if source.rel.startswith(ALLOWED[0]) or source.rel == ALLOWED[1]:
            continue  # obs::Stopwatch / Tick ARE the sanctioned clocks
        for lineno, code, _raw in source.lines():
            if RAW_CLOCK.search(code):
                ctx.finding(source, lineno,
                            "direct host-clock read; use obs::Stopwatch or "
                            "obs::ScopedWallTimer (src/obs/wallclock.h) so "
                            "wall-time access stays auditable and simulation "
                            "logic stays on Tick")


RULE = Rule(
    name="raw-clock",
    summary="no direct std::chrono/clock_gettime outside src/obs",
    help=__doc__,
    check=check,
)
