"""No std::vector construction in the per-slot hot paths
(src/fec/reed_solomon.cc, src/phy/channel.cc, src/phy/error_model.cc): the
sweep fast path works on caller-provided scratch (ChannelScratch, *Into
APIs) so no slot allocates.  Setup-time code (constructors, the allocating
convenience wrappers) carries a `lint: allow-hot-alloc` waiver comment."""
from __future__ import annotations

import re

from ..engine import Context, Rule

HOT_ALLOC_FILES = ("src/fec/reed_solomon.cc", "src/phy/channel.cc",
                   "src/phy/error_model.cc")
HOT_ALLOC = re.compile(r"\bstd::vector\s*<")


def constructs_vector(line: str) -> bool:
    """True if the line constructs a std::vector object (a declaration or a
    temporary) rather than naming the type as a reference, pointer, or the
    return type of an out-of-line qualified function definition."""
    for m in HOT_ALLOC.finditer(line):
        depth = 1
        i = m.end()
        while i < len(line) and depth > 0:
            if line[i] == "<":
                depth += 1
            elif line[i] == ">":
                depth -= 1
            i += 1
        if depth > 0:
            return True  # type spans lines; assume the worst
        rest = line[i:].lstrip()
        if rest[:1] in ("&", "*"):
            continue  # reference/pointer parameter: no allocation
        if rest[:1] in (">", ","):
            continue  # nested inside an enclosing template argument list
        name = re.match(r"[A-Za-z_]\w*", rest)
        if name and rest[name.end():].startswith("::"):
            continue  # qualified return type of a function definition
        return True
    return False


def check(ctx: Context) -> None:
    for rel in HOT_ALLOC_FILES:
        source = ctx.file(rel)
        if source is None:
            continue
        for lineno, code, _raw in source.lines():
            if constructs_vector(code):
                ctx.finding(source, lineno,
                            "std::vector constructed in a phy/fec hot path; "
                            "use the caller-provided scratch (ChannelScratch "
                            "/ *Into APIs) or add a `lint: allow-hot-alloc` "
                            "waiver for setup-time code")


RULE = Rule(
    name="hot-alloc",
    summary="no std::vector construction in phy/fec per-slot hot paths",
    help=__doc__,
    check=check,
)
