"""No NDEBUG gating around the OSUMAC_CHECK* definitions in common/check.h:
the always-on macros must stay always-on (OSUMAC_DCHECK* are the sanctioned
debug-only twins)."""
from __future__ import annotations

import re

from ..engine import Context, Rule


def check(ctx: Context) -> None:
    source = ctx.file("src/common/check.h")
    if source is None:
        ctx.finding("src/common/check.h", 1, "src/common/check.h is missing")
        return
    depth_gated = 0  # depth of enclosing NDEBUG-conditional blocks
    saw_check_define = False
    for lineno, raw in enumerate(source.raw_lines, 1):
        stripped = raw.strip()
        if re.match(r"#\s*if(def|ndef)?\b", stripped):
            depth_gated += 1 if "NDEBUG" in stripped or depth_gated else 0
        elif re.match(r"#\s*endif\b", stripped) and depth_gated:
            depth_gated -= 1
        if re.match(r"#\s*define\s+OSUMAC_CHECK\b|#\s*define\s+OSUMAC_CHECK_",
                    stripped):
            saw_check_define = True
            if depth_gated:
                ctx.finding(source, lineno,
                            "OSUMAC_CHECK* defined inside an NDEBUG "
                            "conditional; the always-on macros must fire in "
                            "every build type")
        # kDChecksEnabled is the only sanctioned NDEBUG use: a constant the
        # optimizer folds, keeping DCHECK conditions type-checked everywhere.
    if not saw_check_define:
        ctx.finding(source, 1, "OSUMAC_CHECK definition not found")


RULE = Rule(
    name="checks-always-on",
    summary="OSUMAC_CHECK* must not be NDEBUG-gated",
    help=__doc__,
    check=check,
)
