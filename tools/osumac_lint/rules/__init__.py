"""Rule registry: every lint rule, in the order it runs and is listed."""
from __future__ import annotations

from . import (bare_assert, bench_direct_cell, checks_always_on, float_tick,
               hot_alloc, journal_hook_discipline, nondeterminism,
               ordered_iteration, policy_layer_boundary, raw_clock,
               raw_latency, raw_sanitize, raw_stdout, rng_stream_discipline,
               shared_state_annotation)

ALL_RULES = [
    bare_assert.RULE,
    float_tick.RULE,
    nondeterminism.RULE,
    checks_always_on.RULE,
    raw_stdout.RULE,
    raw_latency.RULE,
    raw_clock.RULE,
    raw_sanitize.RULE,
    bench_direct_cell.RULE,
    hot_alloc.RULE,
    journal_hook_discipline.RULE,
    rng_stream_discipline.RULE,
    ordered_iteration.RULE,
    shared_state_annotation.RULE,
    policy_layer_boundary.RULE,
]
