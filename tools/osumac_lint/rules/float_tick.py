"""No float/double arithmetic on Tick values in the scheduling layers
(src/mac, src/sim, src/phy).  All slot geometry is exact in integer ticks;
one float sneaking in can perturb slot-overlap or guard comparisons.
ToSeconds() on the same line is exempt (reporting), as is a line carrying a
`lint: allow-float-tick` waiver comment."""
from __future__ import annotations

import re

from ..engine import Context, Rule

# A floating-point ingredient: the keywords, a floating literal, or a
# to-double cast.
FLOAT_USE = re.compile(
    r"\b(?:double|float)\b|(?<![\w.])\d+\.\d+|static_cast<\s*(?:double|float)\s*>")
# A tick-typed quantity on the same line.
TICK_USE = re.compile(r"\bTick\b|\b[A-Za-z_]*[Tt]icks?\b")


def check(ctx: Context) -> None:
    for source in ctx.files("src/mac", "src/sim", "src/phy"):
        for lineno, code, _raw in source.lines():
            if "ToSeconds(" in code:
                continue  # the one sanctioned Tick -> float bridge
            if FLOAT_USE.search(code) and TICK_USE.search(code):
                ctx.finding(source, lineno,
                            "float arithmetic on tick values; slot geometry "
                            "must stay in exact integer ticks (use ToSeconds() "
                            "only for reporting)")


RULE = Rule(
    name="float-tick",
    summary="no float arithmetic on Tick values in scheduling layers",
    help=__doc__,
    check=check,
)
