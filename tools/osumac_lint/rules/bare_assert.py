"""No assert() in src/: the default RelWithDebInfo build defines NDEBUG,
which silently compiles assert() out.  Use OSUMAC_CHECK* (always-on) or
OSUMAC_DCHECK* (hot paths) from common/check.h."""
from __future__ import annotations

import re

from ..engine import Context, Rule

BARE_ASSERT = re.compile(r"(?<![\w_])assert\s*\(")


def check(ctx: Context) -> None:
    for source in ctx.files("src"):
        for lineno, code, _raw in source.lines():
            if "static_assert" in code:
                code = code.replace("static_assert", "")
            if BARE_ASSERT.search(code):
                ctx.finding(source, lineno,
                            "assert() vanishes under NDEBUG; use OSUMAC_CHECK "
                            "or OSUMAC_DCHECK (common/check.h)")


RULE = Rule(
    name="bare-assert",
    summary="no assert() in src/ (NDEBUG compiles it out)",
    help=__doc__,
    check=check,
)
