"""No rand()/srand()/time() in src/: the simulator must be deterministic
and seeded (use common/rng.h; pass sim time explicitly)."""
from __future__ import annotations

import re

from ..engine import Context, Rule

NONDETERMINISM = re.compile(r"(?<![\w_.:])(?:std::)?(rand|srand|time)\s*\(")


def check(ctx: Context) -> None:
    for source in ctx.files("src"):
        for lineno, code, _raw in source.lines():
            m = NONDETERMINISM.search(code)
            if m:
                ctx.finding(source, lineno,
                            f"{m.group(1)}() breaks deterministic replay; use "
                            "common/rng.h / simulation time")


RULE = Rule(
    name="nondeterminism",
    summary="no rand()/srand()/time() in src/",
    help=__doc__,
    check=check,
)
