"""osumac_lint: the OSU-MAC project lint framework.

One module per rule under ``rules/``, a shared comment/string-aware scanner
(``scanner.py``), a reconciled waiver ledger (``waivers.py`` +
``waivers.json``), and text/JSON/SARIF output (``output.py``).  See
docs/STATIC_ANALYSIS.md for the rule catalogue and the waiver policy.
"""
from __future__ import annotations

from .cli import main

__all__ = ["main"]
