"""Finding serializers: plain text (the CI log), JSON (scripting), and
SARIF 2.1.0 (GitHub code-scanning upload, inline PR annotations)."""
from __future__ import annotations

import json

from .engine import Finding, Rule


def render_text(findings: list[Finding]) -> str:
    return "\n".join(f.render() for f in findings)


def render_json(findings: list[Finding], rules: list[Rule]) -> str:
    return json.dumps(
        {
            "rules": [{"name": r.name, "summary": r.summary} for r in rules],
            "findings": [
                {
                    "rule": f.rule,
                    "file": f.rel_path,
                    "line": f.line,
                    "message": f.message,
                }
                for f in findings
            ],
        },
        indent=2) + "\n"


def render_sarif(findings: list[Finding], rules: list[Rule]) -> str:
    """SARIF 2.1.0 with one reportingDescriptor per rule, so uploads get
    stable rule ids and the help text travels with the artifact."""
    rule_index = {r.name: i for i, r in enumerate(rules)}
    sarif = {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                   "master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "osumac-lint",
                        "informationUri":
                            "https://example.invalid/osumac/docs/"
                            "STATIC_ANALYSIS.md",
                        "rules": [
                            {
                                "id": r.name,
                                "shortDescription": {"text": r.summary},
                                "fullDescription":
                                    {"text": " ".join((r.help or "").split())},
                                "defaultConfiguration": {"level": "error"},
                            }
                            for r in rules
                        ],
                    }
                },
                "results": [
                    {
                        "ruleId": f.rule,
                        "ruleIndex": rule_index.get(f.rule, -1),
                        "level": "error",
                        "message": {"text": f.message},
                        "locations": [
                            {
                                "physicalLocation": {
                                    "artifactLocation": {
                                        "uri": f.rel_path,
                                        "uriBaseId": "SRCROOT",
                                    },
                                    "region": {"startLine": f.line},
                                }
                            }
                        ],
                    }
                    for f in findings
                ],
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            }
        ],
    }
    return json.dumps(sarif, indent=2) + "\n"
