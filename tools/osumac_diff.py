#!/usr/bin/env python3
"""Cross-run divergence diagnosis for osumac run journals.

A run journal (osumac_sim --journal, or make_figures' RUN_journal.jsonl) is
a per-cycle digest chain over each cell's MAC-visible state: slot grids,
reservation queues, counters, SLO buckets and the event-trace fingerprint,
with per-component hashes so a diff can name not just the first cycle where
two runs part ways but which component moved first.

    python3 tools/osumac_diff.py A.jsonl B.jsonl
    python3 tools/osumac_diff.py A.jsonl B.jsonl --expect-divergence-at 102
    python3 tools/osumac_diff.py A.jsonl B.jsonl --flight flight_dump/

Exit codes: 0 = journals agree (or the expected divergence was found),
1 = unexpected divergence (or an expected one was missing / elsewhere),
2 = usage or malformed input.

Because each record's `chain` folds the whole history before it, the first
divergent cycle is found by bisection on the chain column; the component
hashes at that record then name the culprit.  With --flight DIR the report
cross-references a FlightRecorder dump (MANIFEST trip reason, events and
packet-lifecycle spans near the divergent cycle) so the culprit report
reads as a story, not a hash pair.
"""
from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

COMPONENTS = ["slot_grid", "queues", "counters", "slo", "events"]


def fail(msg: str) -> None:
    print(f"osumac_diff: {msg}", file=sys.stderr)
    sys.exit(2)


def load_journal(path: Path) -> dict:
    """Parses a journal JSONL into {header, cells: {id: [records]}}."""
    header: dict = {}
    cells: dict[int, list[dict]] = {}
    dropped: dict[int, int] = {}
    try:
        lines = path.read_text().splitlines()
    except OSError as e:
        fail(f"{path}: {e}")
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{path}:{lineno}: {e}")
        if "cell" not in obj:
            if obj.get("schema", "").startswith("osumac-journal"):
                header = obj
            continue
        cell = obj["cell"]
        if "dropped" in obj and "cycle" not in obj:
            dropped[cell] = obj["dropped"]
            continue
        for key in ["cycle", "chain"] + COMPONENTS:
            if key not in obj:
                fail(f"{path}:{lineno}: record missing '{key}'")
        cells.setdefault(cell, []).append(obj)
    if not header and not cells:
        fail(f"{path}: not a journal (no header, no records)")
    return {"header": header, "cells": cells, "dropped": dropped}


def first_chain_mismatch(a: list[dict], b: list[dict]) -> int | None:
    """Index of the first record whose chain differs, by bisection.

    The chain at index i folds every record up to i, so chain equality at i
    implies the whole prefix matched: the mismatch indices form a suffix,
    and the boundary can be bisected.  Returns None if the common prefix
    (min length) agrees everywhere.
    """
    n = min(len(a), len(b))
    if n == 0 or a[n - 1]["chain"] == b[n - 1]["chain"]:
        return None
    lo, hi = 0, n - 1  # invariant: chain differs at hi, agrees below lo
    while lo < hi:
        mid = (lo + hi) // 2
        if a[mid]["chain"] == b[mid]["chain"]:
            lo = mid + 1
        else:
            hi = mid
    return lo


def divergent_components(ra: dict, rb: dict) -> list[str]:
    if ra["cycle"] != rb["cycle"]:
        return ["cycle"]
    moved = [c for c in COMPONENTS if ra[c] != rb[c]]
    return moved if moved else ["chain"]


def find_divergence(ja: dict, jb: dict) -> dict | None:
    """First divergent (cycle, cell) across both journals.

    Per cell, the first chain mismatch is bisected; across cells the
    earliest cycle wins (ties: lowest cell id).  A cell present on one side
    only, or a journal running short, is a length divergence at the first
    uncovered cycle.
    """
    best: dict | None = None

    def consider(candidate: dict) -> None:
        nonlocal best
        if best is None or (candidate["cycle"], candidate["cell"]) < (
                best["cycle"], best["cell"]):
            best = candidate

    for cell in sorted(set(ja["cells"]) | set(jb["cells"])):
        a = ja["cells"].get(cell)
        b = jb["cells"].get(cell)
        if a is None or b is None:
            present = a if a is not None else b
            consider({"cell": cell, "cycle": present[0]["cycle"],
                      "kind": "missing-cell",
                      "side": "b" if a is not None else "a"})
            continue
        idx = first_chain_mismatch(a, b)
        if idx is not None:
            consider({"cell": cell, "cycle": a[idx]["cycle"], "kind": "record",
                      "index": idx, "a": a[idx], "b": b[idx],
                      "components": divergent_components(a[idx], b[idx])})
        elif len(a) != len(b):
            longer = a if len(a) > len(b) else b
            consider({"cell": cell, "cycle": longer[min(len(a), len(b))]["cycle"],
                      "kind": "length", "len_a": len(a), "len_b": len(b)})
    return best


def print_context(a: list[dict], b: list[dict], idx: int, context: int) -> None:
    lo = max(0, idx - context)
    hi = min(min(len(a), len(b)), idx + context + 1)
    header = f"  {'cycle':>8}  " + "  ".join(f"{c:<10}" for c in COMPONENTS + ["chain"])
    print(header)
    for i in range(lo, hi):
        marks = []
        for c in COMPONENTS + ["chain"]:
            same = a[i][c] == b[i][c]
            marks.append((a[i][c][:8] + "  ") if same else
                         (a[i][c][:4] + "!" + b[i][c][:4]))
        tag = " <- first divergence" if i == idx else ""
        print(f"  {a[i]['cycle']:>8}  " + "  ".join(f"{m:<10}" for m in marks) + tag)
    print("  (matching component cells show run A's hash prefix; diverging"
          " ones show A!B prefixes)")


def cross_reference_flight(flight_dir: Path, cycle: int) -> None:
    """Prints the FlightRecorder dump's story around the divergent cycle."""
    manifest = flight_dir / "MANIFEST.txt"
    if not manifest.is_file():
        print(f"  flight: no MANIFEST.txt in {flight_dir}")
        return
    reason, trip_cycle = "?", None
    for line in manifest.read_text().splitlines():
        if line.startswith("reason: "):
            reason = line[len("reason: "):].strip()
        elif line.startswith("cycle: "):
            trip_cycle = int(line[len("cycle: "):].strip())
    print(f"  flight dump: {flight_dir}")
    print(f"    trip: {reason} (cycle {trip_cycle})")
    if trip_cycle is not None and trip_cycle != cycle:
        print(f"    note: trip cycle {trip_cycle} != diffed divergence "
              f"cycle {cycle}")
    events_path = flight_dir / "events.jsonl"
    if not events_path.is_file():
        return
    window, lifecycles = [], set()
    for line in events_path.read_text().splitlines():
        if not line.strip():
            continue
        ev = json.loads(line)
        if abs(ev.get("cycle", -10**9) - cycle) <= 1:
            window.append(ev)
            if ev.get("kind") == "lifecycle":
                lifecycles.add(ev.get("a1"))
    print(f"    events within 1 cycle of divergence: {len(window)} "
          f"({len(lifecycles)} packet lifecycles touched)")
    for ev in window[:12]:
        desc = f"      c={ev.get('cycle')} t={ev.get('tick')} {ev.get('kind')}"
        if ev.get("channel"):
            desc += f" ch={ev['channel']}"
        if ev.get("node", -1) >= 0:
            desc += f" node={ev['node']}"
        if ev.get("slot", -1) >= 0:
            desc += f" slot={ev['slot']}"
        print(desc)
    if len(window) > 12:
        print(f"      ... and {len(window) - 12} more (see {events_path})")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("journal_a", type=Path)
    parser.add_argument("journal_b", type=Path)
    parser.add_argument("--expect-divergence-at", type=int, default=None,
                        metavar="CYCLE",
                        help="require the first divergent cycle to be CYCLE "
                             "(exit 1 if the journals agree or diverge "
                             "elsewhere); for fault-injection harnesses")
    parser.add_argument("--expect-cell", type=int, default=None, metavar="CELL",
                        help="with --expect-divergence-at: also require the "
                             "divergent cell id")
    parser.add_argument("--flight", type=Path, default=None, metavar="DIR",
                        help="cross-reference a FlightRecorder dump: print "
                             "the trip reason and the event/lifecycle window "
                             "around the divergent cycle")
    parser.add_argument("--context", type=int, default=3,
                        help="context records around the divergence (default 3)")
    args = parser.parse_args(argv)

    ja = load_journal(args.journal_a)
    jb = load_journal(args.journal_b)

    ea = ja["header"].get("every", 1)
    eb = jb["header"].get("every", 1)
    if ea != eb:
        fail(f"journals sampled at different cadence: every={ea} vs every={eb}")
    for j, name in [(ja, args.journal_a), (jb, args.journal_b)]:
        if j["dropped"]:
            total = sum(j["dropped"].values())
            print(f"osumac_diff: note: {name} dropped {total} records past "
                  f"the retention bound; the diff covers retained records")

    div = find_divergence(ja, jb)
    sig_a = ja["header"].get("signature")
    sig_b = jb["header"].get("signature")

    if div is None:
        records = sum(len(r) for r in ja["cells"].values())
        if args.expect_divergence_at is not None:
            print(f"osumac_diff: FAIL: expected divergence at cycle "
                  f"{args.expect_divergence_at}, but the journals agree "
                  f"({records} records, {len(ja['cells'])} cell(s))")
            return 1
        suffix = "" if sig_a == sig_b else (
            f" (header signatures differ: {sig_a} vs {sig_b} — "
            f"records past the retention bound must have diverged)")
        print(f"osumac_diff: OK: journals agree ({records} records, "
              f"{len(ja['cells'])} cell(s), signature {sig_a}){suffix}")
        return 0 if sig_a == sig_b else 1

    print(f"osumac_diff: journals diverge: {args.journal_a} vs {args.journal_b}")
    if div["kind"] == "missing-cell":
        print(f"  cell {div['cell']} is journaled only in run "
              f"{'A' if div['side'] == 'a' else 'B'} (from cycle {div['cycle']})")
    elif div["kind"] == "length":
        print(f"  cell {div['cell']}: record counts differ "
              f"({div['len_a']} vs {div['len_b']}); first uncovered cycle "
              f"{div['cycle']}")
    else:
        comps = ", ".join(div["components"])
        print(f"  first divergence: cycle {div['cycle']}, cell {div['cell']}, "
              f"component(s): {comps}")
        a = ja["cells"][div["cell"]]
        b = jb["cells"][div["cell"]]
        if div["index"] > 0:
            print(f"  last matching cycle: {a[div['index'] - 1]['cycle']}")
        print_context(a, b, div["index"], args.context)
    if args.flight is not None:
        cross_reference_flight(args.flight, div["cycle"])

    if args.expect_divergence_at is not None:
        ok = div["cycle"] == args.expect_divergence_at and (
            args.expect_cell is None or div["cell"] == args.expect_cell)
        if ok:
            where = f"cycle {div['cycle']}"
            if args.expect_cell is not None:
                where += f", cell {div['cell']}"
            print(f"osumac_diff: OK: divergence localized to the expected "
                  f"{where}")
            return 0
        expected = f"cycle {args.expect_divergence_at}"
        if args.expect_cell is not None:
            expected += f", cell {args.expect_cell}"
        print(f"osumac_diff: FAIL: expected first divergence at {expected}, "
              f"found cycle {div['cycle']}, cell {div['cell']}")
        return 1
    return 1


if __name__ == "__main__":
    sys.exit(main())
