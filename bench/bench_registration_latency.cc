// Regenerates the Section-2.1 registration design requirement check:
// "80% of the registration requests can be approved in two notification
// cycles, and 99% can be made in 10 cycles."
//
// Two conditions: isolated arrivals against a quiet cell (the design
// point) and arrivals against a busy cell with background data traffic.
#include <cstdio>
#include <vector>

#include "osumac/osumac.h"

#include "bench_provenance.h"

using namespace osumac;

namespace {

exp::ScenarioSpec TrickleSpec(const char* name, double background_rho,
                              std::uint64_t seed) {
  exp::ScenarioSpec spec;
  spec.name = name;
  spec.data_users = 8;
  spec.gps_users = 0;
  spec.registration_cycles = 10;
  spec.warmup_cycles = background_rho > 0 ? 30 : 0;
  spec.measure_cycles = 0;  // the churn loop itself drives the cycles
  spec.reset_stats_after_warmup = false;
  spec.seed = seed;
  spec.workload.rho = background_rho;
  spec.churn.arrivals = 60;
  // Registrations trickle in a few cycles apart (the design point), each
  // sampled inline with a bounded straggler wait.  The measured unit
  // leaves again (commuter churn); otherwise 60 arrivals would exhaust
  // the 6-bit user-ID space and later arrivals would be rejected for
  // capacity rather than contention reasons.
  spec.churn.gap_lo_cycles = 2;
  spec.churn.gap_hi_cycles = 5;
  spec.churn.max_extra_wait_cycles = 40;
  spec.churn.sign_off_after_sample = true;
  return spec;
}

SampleSet ToSampleSet(const exp::RunResult& r) {
  SampleSet latency;
  for (const double sample : r.churn_registration_latency) latency.Add(sample);
  return latency;
}

void Report(const char* label, SampleSet& latency) {
  std::printf("  %-28s p50 %5.1f   p80 %5.1f   p99 %5.1f   max %5.1f   (n=%zu)\n", label,
              latency.Median(), latency.Quantile(0.80), latency.Quantile(0.99),
              latency.Max(), latency.size());
}

}  // namespace

int main(int argc, char** argv) {
  osumac::bench::PrintProvenance("bench_registration_latency");
  const int jobs = exp::JobsFromArgs(argc, argv, 1);

  const std::vector<exp::ScenarioSpec> specs = {TrickleSpec("quiet", 0.0, 11),
                                                TrickleSpec("busy", 0.8, 13)};
  const std::vector<exp::RunResult> results = exp::SweepRunner(jobs).Run(specs);

  std::printf("Registration latency in notification cycles (Section 2.1 targets:\n"
              "80%% within 2 cycles, 99%% within 10 cycles)\n\n");
  SampleSet quiet = ToSampleSet(results[0]);
  Report("quiet cell:", quiet);
  SampleSet busy = ToSampleSet(results[1]);
  Report("busy cell (rho = 0.8):", busy);

  const bool p80 = quiet.Quantile(0.80) <= 2.0;
  const bool p99 = quiet.Quantile(0.99) <= 10.0;
  std::printf("\n  design targets met at the design point: p80<=2: %s, p99<=10: %s\n",
              p80 ? "YES" : "NO", p99 ? "YES" : "NO");
  return 0;
}
