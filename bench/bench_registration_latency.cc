// Regenerates the Section-2.1 registration design requirement check:
// "80% of the registration requests can be approved in two notification
// cycles, and 99% can be made in 10 cycles."
//
// Two conditions: isolated arrivals against a quiet cell (the design
// point) and arrivals against a busy cell with background data traffic.
#include <cstdio>

#include "osumac/osumac.h"

#include "bench_provenance.h"

using namespace osumac;

namespace {

SampleSet MeasureLatency(double background_rho, int arrivals, std::uint64_t seed) {
  mac::CellConfig config;
  config.seed = seed;
  mac::Cell cell(config);
  std::vector<int> veterans;
  for (int i = 0; i < 8; ++i) {
    veterans.push_back(cell.AddSubscriber(false));
    cell.PowerOn(veterans.back());
  }
  cell.RunCycles(10);
  const auto sizes = traffic::SizeDistribution::Uniform(40, 500);
  std::unique_ptr<traffic::PoissonUplinkWorkload> workload;
  if (background_rho > 0) {
    workload = std::make_unique<traffic::PoissonUplinkWorkload>(
        cell, veterans,
        traffic::MeanInterarrivalTicks(background_rho, 8, 9, sizes.MeanBytes()), sizes,
        Rng(seed + 1));
    cell.RunCycles(30);
  }

  SampleSet latency;
  Rng rng(seed + 2);
  for (int i = 0; i < arrivals; ++i) {
    const int node = cell.AddSubscriber(false);
    cell.PowerOn(node);
    // Registrations trickle in a few cycles apart (the design point).
    cell.RunCycles(static_cast<int>(rng.UniformInt(2, 5)));
    const auto& s = cell.subscriber(node).stats().registration_latency_cycles;
    if (!s.empty()) {
      latency.Add(s.samples()[0]);
    } else {
      // Still unregistered after the window; keep waiting so the sample
      // is counted honestly rather than dropped.
      int extra = 0;
      while (cell.subscriber(node).state() != mac::MobileSubscriber::State::kActive &&
             extra++ < 40) {
        cell.RunCycles(1);
      }
      const auto& s2 = cell.subscriber(node).stats().registration_latency_cycles;
      latency.Add(s2.empty() ? 40.0 : s2.samples()[0]);
    }
    // The measured unit leaves again (commuter churn); otherwise 60
    // arrivals would exhaust the 6-bit user-ID space and later arrivals
    // would be rejected for capacity rather than contention reasons.
    cell.SignOff(node);
  }
  return latency;
}

void Report(const char* label, SampleSet& latency) {
  std::printf("  %-28s p50 %5.1f   p80 %5.1f   p99 %5.1f   max %5.1f   (n=%zu)\n", label,
              latency.Median(), latency.Quantile(0.80), latency.Quantile(0.99),
              latency.Max(), latency.size());
}

}  // namespace

int main() {
  osumac::bench::PrintProvenance("bench_registration_latency");
  std::printf("Registration latency in notification cycles (Section 2.1 targets:\n"
              "80%% within 2 cycles, 99%% within 10 cycles)\n\n");
  auto quiet = MeasureLatency(0.0, 60, 11);
  Report("quiet cell:", quiet);
  auto busy = MeasureLatency(0.8, 60, 13);
  Report("busy cell (rho = 0.8):", busy);

  const bool p80 = quiet.Quantile(0.80) <= 2.0;
  const bool p99 = quiet.Quantile(0.99) <= 10.0;
  std::printf("\n  design targets met at the design point: p80<=2: %s, p99<=10: %s\n",
              p80 ? "YES" : "NO", p99 ? "YES" : "NO");
  return 0;
}
