// Ablation bench: erasure side-information decoding (extension; the
// burst-erasure idea of the paper's reference [2]) on fading channels.
//
// Sweeps fade severity (mean fade length) and reports GPS report loss and
// uplink decode failures with and without side information.  Expected:
// side information rescues fades up to ~15 symbols (the erasure budget of
// RS(64,48) with one parity symbol spared for verification); very long
// fades defeat both receivers.
#include <cstdio>
#include <vector>

#include "osumac/osumac.h"

#include "bench_provenance.h"

using namespace osumac;

namespace {

exp::ScenarioSpec FadeSpec(double p_bad_to_good, bool side_info) {
  exp::ScenarioSpec spec;
  spec.name = "fade" + std::to_string(p_bad_to_good) + (side_info ? "_ei" : "");
  spec.data_users = 4;
  spec.gps_users = 4;
  spec.registration_cycles = 25;
  spec.warmup_cycles = 0;  // stats reset right after registration
  spec.measure_cycles = 400;
  spec.seed = 500;
  spec.workload.rho = 0.5;
  spec.erasure_side_information = side_info;
  spec.reverse.kind = mac::ChannelModelConfig::Kind::kGilbertElliott;
  spec.reverse.ge.p_good_to_bad = 0.01;
  spec.reverse.ge.p_bad_to_good = p_bad_to_good;
  spec.reverse.ge.error_prob_good = 1e-4;
  spec.reverse.ge.error_prob_bad = 0.9;
  return spec;
}

double GpsLoss(const exp::RunResult& r) {
  const double total =
      static_cast<double>(r.bs.gps_packets_received + r.bs.gps_packets_failed);
  return total > 0 ? static_cast<double>(r.bs.gps_packets_failed) / total : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  osumac::bench::PrintProvenance("bench_ablation_erasures");
  const int jobs = exp::JobsFromArgs(argc, argv, 1);

  std::vector<exp::ScenarioSpec> specs;
  for (const double p_recover : {0.30, 0.15, 0.08, 0.04}) {
    specs.push_back(FadeSpec(p_recover, false));
    specs.push_back(FadeSpec(p_recover, true));
  }
  const std::vector<exp::RunResult> results = exp::SweepRunner(jobs).Run(specs);

  std::printf("Ablation: erasure side information on Gilbert-Elliott fades\n");
  std::printf("(error rate in fades: 0.9/symbol; RS(64,48): 8-error / 15-erasure budget)\n\n");
  std::printf("%16s | %12s %12s | %12s %12s\n", "mean fade (sym)", "gps_loss",
              "gps_loss_ei", "data_fail", "data_fail_ei");
  std::size_t next = 0;
  for (const double p_recover : {0.30, 0.15, 0.08, 0.04}) {
    const exp::RunResult& plain = results[next++];
    const exp::RunResult& with_ei = results[next++];
    std::printf("%16.1f | %12.4f %12.4f | %12lld %12lld\n", 1.0 / p_recover,
                GpsLoss(plain), GpsLoss(with_ei),
                static_cast<long long>(plain.bs.decode_failures),
                static_cast<long long>(with_ei.bs.decode_failures));
  }
  std::printf("\n(expected: side information wins decisively for medium fades and\n"
              " converges with the plain receiver once fades exceed the erasure\n"
              " budget; residual GPS loss is never retransmitted, per the paper)\n");
  return 0;
}
