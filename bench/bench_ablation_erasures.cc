// Ablation bench: erasure side-information decoding (extension; the
// burst-erasure idea of the paper's reference [2]) on fading channels.
//
// Sweeps fade severity (mean fade length) and reports GPS report loss and
// uplink decode failures with and without side information.  Expected:
// side information rescues fades up to ~15 symbols (the erasure budget of
// RS(64,48) with one parity symbol spared for verification); very long
// fades defeat both receivers.
#include <cstdio>

#include "osumac/osumac.h"

#include "bench_provenance.h"

using namespace osumac;

namespace {

struct Outcome {
  double gps_loss = 0;
  std::int64_t data_failures = 0;
};

Outcome Run(double p_bad_to_good, bool side_info, std::uint64_t seed) {
  mac::CellConfig config;
  config.seed = seed;
  config.erasure_side_information = side_info;
  config.reverse.kind = mac::ChannelModelConfig::Kind::kGilbertElliott;
  config.reverse.ge.p_good_to_bad = 0.01;
  config.reverse.ge.p_bad_to_good = p_bad_to_good;
  config.reverse.ge.error_prob_good = 1e-4;
  config.reverse.ge.error_prob_bad = 0.9;
  mac::Cell cell(config);
  std::vector<int> nodes;
  for (int i = 0; i < 4; ++i) cell.PowerOn(cell.AddSubscriber(true));
  for (int i = 0; i < 4; ++i) {
    nodes.push_back(cell.AddSubscriber(false));
    cell.PowerOn(nodes.back());
  }
  cell.RunCycles(25);
  const auto sizes = traffic::SizeDistribution::Uniform(40, 500);
  traffic::PoissonUplinkWorkload w(
      cell, nodes, traffic::MeanInterarrivalTicks(0.5, 4, 8, sizes.MeanBytes()), sizes,
      Rng(seed + 1));
  cell.ResetStats();
  cell.RunCycles(400);

  Outcome out;
  const auto& bs = cell.base_station().counters();
  const double gps_total =
      static_cast<double>(bs.gps_packets_received + bs.gps_packets_failed);
  out.gps_loss = gps_total > 0 ? static_cast<double>(bs.gps_packets_failed) / gps_total
                               : 0.0;
  out.data_failures = bs.decode_failures;
  return out;
}

}  // namespace

int main() {
  osumac::bench::PrintProvenance("bench_ablation_erasures");
  std::printf("Ablation: erasure side information on Gilbert-Elliott fades\n");
  std::printf("(error rate in fades: 0.9/symbol; RS(64,48): 8-error / 15-erasure budget)\n\n");
  std::printf("%16s | %12s %12s | %12s %12s\n", "mean fade (sym)", "gps_loss",
              "gps_loss_ei", "data_fail", "data_fail_ei");
  for (double p_recover : {0.30, 0.15, 0.08, 0.04}) {
    const Outcome plain = Run(p_recover, false, 500);
    const Outcome with_ei = Run(p_recover, true, 500);
    std::printf("%16.1f | %12.4f %12.4f | %12lld %12lld\n", 1.0 / p_recover,
                plain.gps_loss, with_ei.gps_loss,
                static_cast<long long>(plain.data_failures),
                static_cast<long long>(with_ei.data_failures));
  }
  std::printf("\n(expected: side information wins decisively for medium fades and\n"
              " converges with the plain receiver once fades exceed the erasure\n"
              " budget; residual GPS loss is never retransmitted, per the paper)\n");
  return 0;
}
