// Microbenchmarks of the MAC's hot paths (google-benchmark): scheduler
// allocation, forward-schedule construction, control-field serialization,
// GPS slot management, full base-station cycle planning and a whole
// simulated notification cycle.
#include <benchmark/benchmark.h>

#include "bench_provenance.h"
#include "osumac/osumac.h"

using namespace osumac;
using namespace osumac::mac;

namespace {

void BM_RoundRobinAllocate(benchmark::State& state) {
  RoundRobinScheduler rr;
  std::map<UserId, int> demand;
  for (UserId u = 0; u < static_cast<UserId>(state.range(0)); ++u) demand[u] = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rr.Allocate(demand, 8));
  }
}
BENCHMARK(BM_RoundRobinAllocate)->Arg(4)->Arg(16)->Arg(60);

void BM_BuildForwardSchedule(benchmark::State& state) {
  ForwardScheduleInput in;
  in.format = ReverseFormat::kFormat1;
  for (UserId u = 0; u < 20; ++u) {
    in.demand[u] = 3;
    in.slot0_eligible.insert(u);
  }
  for (int i = 0; i < 8; ++i) in.gps_schedule[static_cast<std::size_t>(i)] = static_cast<UserId>(30 + i);
  for (int i = 1; i < 8; ++i) in.reverse_schedule[static_cast<std::size_t>(i)] = static_cast<UserId>(i);
  in.cf2_listener = 7;
  in.cf2_listener_tx_tail_end = 11850;
  RoundRobinScheduler rr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildForwardSchedule(in, rr));
  }
}
BENCHMARK(BM_BuildForwardSchedule);

void BM_ControlFieldSerialize(benchmark::State& state) {
  ControlFields cf;
  for (int i = 0; i < 8; ++i) cf.gps_schedule[static_cast<std::size_t>(i)] = static_cast<UserId>(i);
  for (int i = 0; i < 9; ++i) cf.reverse_schedule[static_cast<std::size_t>(i)] = static_cast<UserId>(10 + i);
  for (int i = 0; i < 37; ++i) cf.forward_schedule[static_cast<std::size_t>(i)] = static_cast<UserId>(i % 60);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SerializeControlFields(cf));
  }
}
BENCHMARK(BM_ControlFieldSerialize);

void BM_ControlFieldParse(benchmark::State& state) {
  const auto blocks = SerializeControlFields(ControlFields{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParseControlFields(blocks[0], blocks[1]));
  }
}
BENCHMARK(BM_ControlFieldParse);

void BM_ControlFieldEncodeDecodeRs(benchmark::State& state) {
  // The full control-field air path: serialize, RS-encode both codewords,
  // decode, parse — what every subscriber does every cycle.
  const auto& rs = fec::ReedSolomon::Osu6448();
  ControlFields cf;
  for (auto _ : state) {
    const auto blocks = SerializeControlFields(cf);
    const auto cw0 = rs.Encode(blocks[0]);
    const auto cw1 = rs.Encode(blocks[1]);
    const auto d0 = rs.Decode(cw0);
    const auto d1 = rs.Decode(cw1);
    benchmark::DoNotOptimize(ParseControlFields(d0->data, d1->data));
  }
}
BENCHMARK(BM_ControlFieldEncodeDecodeRs);

void BM_GpsSlotChurn(benchmark::State& state) {
  for (auto _ : state) {
    GpsSlotManager mgr;
    for (UserId u = 0; u < 8; ++u) mgr.Admit(u);
    mgr.Release(2);
    mgr.Release(5);
    mgr.Admit(10);
    mgr.Release(0);
    benchmark::DoNotOptimize(mgr.Schedule());
  }
}
BENCHMARK(BM_GpsSlotChurn);

void BM_BaseStationPlanCycle(benchmark::State& state) {
  MacConfig config;
  BaseStation bs(config);
  std::uint16_t cycle = 0;
  // Populate: 4 GPS + 10 data users with standing demand.
  for (Ein ein = 1; ein <= 14; ++ein) {
    RegistrationPacket reg;
    reg.ein = ein;
    reg.wants_gps = ein <= 4;
    phy::SlotReception r;
    r.outcome = phy::SlotOutcome::kDecoded;
    r.info = {SerializeRegistrationPacket(reg)};
    bs.OnDataSlotResolved(1, r);
    bs.PlanCycle(cycle++);
  }
  for (const auto& [uid, ein] : bs.registered_users()) {
    ReservationPacket res;
    res.src = uid;
    res.slots_requested = 10;
    phy::SlotReception r;
    r.outcome = phy::SlotOutcome::kDecoded;
    r.info = {SerializeReservationPacket(res)};
    bs.OnDataSlotResolved(1, r);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(bs.PlanCycle(cycle++));
  }
}
BENCHMARK(BM_BaseStationPlanCycle);

/// The loaded-cell fixture both end-to-end microbenches step through: 10
/// data users + 4 buses at rho = 0.8, built and warmed by the scenario
/// engine (workloads keep generating while the timing loop steps cycles).
exp::ScenarioSpec LoadedCellSpec() {
  exp::ScenarioSpec spec;
  spec.name = "mac_micro";
  spec.data_users = 10;
  spec.gps_users = 4;
  spec.registration_cycles = 10;
  spec.warmup_cycles = 0;
  spec.reset_stats_after_warmup = false;
  spec.seed = 1;
  spec.workload.rho = 0.8;
  return spec;
}

void BM_FullNotificationCycle(benchmark::State& state) {
  // One whole simulated cycle of a loaded cell, including every RS
  // encode/decode on the air.  This is the simulator's end-to-end unit of
  // work (~4 simulated seconds per iteration).
  exp::ScenarioRun run(LoadedCellSpec());
  run.BuildPopulation();
  run.StartWorkloads();
  for (auto _ : state) {
    run.cell().RunCycles(1);
  }
  state.SetLabel("one 3.98 s notification cycle per iteration");
}
BENCHMARK(BM_FullNotificationCycle);

void BM_FullNotificationCycleTraced(benchmark::State& state) {
  // BM_FullNotificationCycle with an event trace attached; comparing the
  // two bounds the tracer's overhead.  (With no trace attached every
  // emission site is a single null-pointer check, so the untraced variant
  // above also measures the disabled-path cost.)
  exp::ScenarioRun run(LoadedCellSpec());
  run.BuildPopulation();
  run.StartWorkloads();
  obs::EventTrace trace;
  run.cell().AttachTrace(&trace);
  for (auto _ : state) {
    run.cell().RunCycles(1);
  }
  state.counters["events_per_cycle"] = benchmark::Counter(
      static_cast<double>(trace.recorded()),
      benchmark::Counter::kAvgIterations);
  state.SetLabel("one traced 3.98 s notification cycle per iteration");
}
BENCHMARK(BM_FullNotificationCycleTraced);

}  // namespace

OSUMAC_BENCHMARK_MAIN("bench_mac_micro");
