// Run-provenance header for benches: every bench prints one line saying
// which build produced its numbers (git describe + build type) and with
// what seed/config, so results stay comparable across checkouts.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "obs/provenance.h"

namespace osumac::bench {

/// Prints the one-line provenance header.  Call first thing in main().
inline void PrintProvenance(const char* tool, std::uint64_t seed = 0,
                            const std::string& config = "") {
  std::printf("%s\n", obs::ProvenanceLine(tool, seed, config).c_str());
}

}  // namespace osumac::bench

/// Drop-in replacement for BENCHMARK_MAIN() that prints the provenance
/// header before running google-benchmark.
#define OSUMAC_BENCHMARK_MAIN(tool)                                     \
  int main(int argc, char** argv) {                                     \
    ::osumac::bench::PrintProvenance(tool);                             \
    ::benchmark::Initialize(&argc, argv);                               \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                              \
    ::benchmark::Shutdown();                                            \
    return 0;                                                           \
  }
