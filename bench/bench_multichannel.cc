// Extension bench: capacity scaling with multiple channel pairs per cell
// site (the paper's "a number of frequencies" system model; the 2001
// testbed used one pair).
//
// A fixed, heavy offered load (about 2.2x one carrier's data capacity,
// plus 12 GPS buses) is served by 1..4 carriers.  Expected: carried
// traffic scales ~linearly until the load is no longer the bottleneck, and
// 12 buses only obtain full 4-second QoS once two carriers provide 16 GPS
// slots.
#include <cstdio>

#include "osumac/osumac.h"

#include "bench_provenance.h"

using namespace osumac;
using namespace osumac::mac;

int main() {
  osumac::bench::PrintProvenance("bench_multichannel");
  std::printf("Capacity scaling with carriers (24 data users @ ~2.2x single-"
              "carrier load, 12 buses)\n");
  std::printf("%8s %12s %12s %12s %12s %12s\n", "carriers", "payload_kB",
              "agg_util", "gps_users", "gps_ok", "speedup");
  double base = 0;
  for (int carriers = 1; carriers <= 4; ++carriers) {
    CellConfig config;
    config.seed = 42;
    MultiChannelCell site(config, carriers);
    std::vector<int> ids;
    for (int i = 0; i < 24; ++i) {
      ids.push_back(site.AddSubscriber(false));
      site.PowerOn(ids.back());
    }
    std::vector<int> buses;
    for (int i = 0; i < 12; ++i) {
      buses.push_back(site.AddSubscriber(true));
      site.PowerOn(buses.back());
    }
    site.RunCycles(15);
    site.ResetStats();
    // Deterministic heavy load: each user offers 4 packets/cycle-ish.
    for (int step = 0; step < 200; ++step) {
      for (int id : ids) {
        if (step % 3 == 0) site.SendUplinkMessage(id, 264);  // 6 packets
      }
      site.RunCycles(1);
    }
    site.RunCycles(20);

    int gps_ok = 0;
    for (int b : buses) {
      const auto& st = site.subscriber(b).stats();
      if (!st.gps_access_delay_seconds.empty() &&
          st.gps_access_delay_seconds.Max() < 4.0 && st.gps_reports_sent > 180) {
        ++gps_ok;
      }
    }
    const double payload = static_cast<double>(site.TotalPayloadBytes());
    if (carriers == 1) base = payload;
    std::printf("%8d %12.1f %12.3f %12d %12d %12.2f\n", carriers, payload / 1024.0,
                site.AggregateUtilization(), site.TotalGpsUsers(), gps_ok,
                payload / base);
  }
  std::printf("\n(expected: near-linear payload scaling while overloaded; all 12\n"
              " buses only get slots and QoS once >= 2 carriers exist)\n");
  return 0;
}
