// Regenerates Figure 11: Jain's fairness index of the bandwidth acquired
// by the data subscribers under the round-robin scheduler, versus load.
//
// Expected (paper): > 0.99 under all traffic loads.  At light load the
// index also reflects Poisson traffic variance (users barely offer
// anything), so the bench runs long enough for shares to even out.
#include <cstdio>
#include <vector>

#include "osumac/osumac.h"

#include "bench_provenance.h"

using namespace osumac;

int main(int argc, char** argv) {
  osumac::bench::PrintProvenance("bench_fig11_fairness");
  const int jobs = exp::JobsFromArgs(argc, argv, 1);

  std::vector<exp::ScenarioSpec> specs;
  for (const double rho : exp::LoadSweep()) {
    exp::ScenarioSpec point = exp::LoadPoint(rho);
    point.measure_cycles = 2000;  // long run so offered shares equalize
    specs.push_back(point);
  }
  const std::vector<exp::RunResult> results = exp::SweepRunner(jobs).Run(specs);

  metrics::TablePrinter table({"rho", "fairness", "users"}, 12);
  std::printf("Figure 11: fairness of the round-robin reverse-channel scheduler\n");
  table.PrintHeader();
  for (std::size_t i = 0; i < results.size(); ++i) {
    table.PrintRow({specs[i].workload.rho, results[i].figure.fairness_index,
                    static_cast<double>(specs[i].data_users)});
  }
  std::printf("\n(paper Fig. 11: fairness index above 0.99 at every load)\n");
  return 0;
}
