// Regenerates Figure 11: Jain's fairness index of the bandwidth acquired
// by the data subscribers under the round-robin scheduler, versus load.
//
// Expected (paper): > 0.99 under all traffic loads.  At light load the
// index also reflects Poisson traffic variance (users barely offer
// anything), so the bench runs long enough for shares to even out.
#include <cstdio>

#include "sweep_common.h"

#include "bench_provenance.h"

using namespace osumac;
using namespace osumac::bench;

int main() {
  osumac::bench::PrintProvenance("bench_fig11_fairness");
  metrics::TablePrinter table({"rho", "fairness", "users"}, 12);
  std::printf("Figure 11: fairness of the round-robin reverse-channel scheduler\n");
  table.PrintHeader();
  for (double rho : LoadSweep()) {
    SweepPoint point;
    point.rho = rho;
    point.measure_cycles = 2000;  // long run so offered shares equalize
    const SweepResult r = RunLoadPoint(point);
    table.PrintRow({rho, r.figure.fairness_index, static_cast<double>(point.data_users)});
  }
  std::printf("\n(paper Fig. 11: fairness index above 0.99 at every load)\n");
  return 0;
}
