// Shared harness for the Section-5 evaluation benches: builds the paper's
// simulation scenario (data subscribers with Poisson e-mail traffic plus
// GPS buses) for one load-index point and returns the figure metrics.
#pragma once

#include <cstdio>
#include <vector>

#include "osumac/osumac.h"

namespace osumac::bench {

struct SweepPoint {
  double rho = 0.5;
  int data_users = 10;
  int gps_users = 4;
  int warmup_cycles = 50;
  int measure_cycles = 800;
  std::uint64_t seed = 2001;
  mac::MacConfig mac;
  traffic::SizeDistribution sizes = traffic::SizeDistribution::Uniform(40, 500);
};

struct SweepResult {
  metrics::FigureMetrics figure;
  mac::BsCounters bs;
  double offered_load = 0.0;  ///< realized offered load (sanity check)
};

inline SweepResult RunLoadPoint(const SweepPoint& point) {
  mac::CellConfig config;
  config.seed = point.seed;
  config.mac = point.mac;
  mac::Cell cell(config);

  std::vector<int> nodes;
  for (int i = 0; i < point.data_users; ++i) {
    nodes.push_back(cell.AddSubscriber(false));
    cell.PowerOn(nodes.back());
  }
  for (int i = 0; i < point.gps_users; ++i) cell.PowerOn(cell.AddSubscriber(true));
  cell.RunCycles(12);  // registration

  const int d =
      mac::ReverseCycleLayout(mac::FormatForGpsCount(point.gps_users)).data_slot_count();
  const Tick interarrival = traffic::MeanInterarrivalTicks(
      point.rho, point.data_users, d, point.sizes.MeanBytes());
  traffic::PoissonUplinkWorkload workload(cell, nodes, interarrival, point.sizes,
                                          Rng(point.seed ^ 0x9E3779B97F4A7C15ULL));
  cell.RunCycles(point.warmup_cycles);
  cell.ResetStats();
  cell.RunCycles(point.measure_cycles);

  SweepResult result;
  result.figure = metrics::ComputeFigureMetrics(cell, nodes);
  result.bs = cell.base_station().counters();
  result.offered_load =
      cell.metrics().capacity_bytes > 0
          ? static_cast<double>(cell.metrics().offered_bytes) /
                static_cast<double>(cell.metrics().capacity_bytes)
          : 0.0;
  return result;
}

/// The paper's load-index sweep (Section 5).
inline const std::vector<double>& LoadSweep() {
  static const std::vector<double> sweep = {0.3, 0.5, 0.8, 0.9, 1.0, 1.1};
  return sweep;
}

/// Mean and sample standard deviation of a metric across seed replications.
struct Replicated {
  double mean = 0.0;
  double stddev = 0.0;
};

/// Runs `point` under `replications` different seeds and aggregates any set
/// of metrics extracted by `extract` (one value per metric per run).
template <typename Extract>
std::vector<Replicated> RunReplicated(SweepPoint point, int replications,
                                      Extract&& extract) {
  std::vector<RunningStats> stats;
  for (int r = 0; r < replications; ++r) {
    point.seed = 2001 + static_cast<std::uint64_t>(r) * 7919;
    const SweepResult result = RunLoadPoint(point);
    const std::vector<double> values = extract(result);
    stats.resize(values.size());
    for (std::size_t i = 0; i < values.size(); ++i) stats[i].Add(values[i]);
  }
  std::vector<Replicated> out(stats.size());
  for (std::size_t i = 0; i < stats.size(); ++i) {
    out[i] = {stats[i].mean(), stats[i].stddev()};
  }
  return out;
}

}  // namespace osumac::bench
