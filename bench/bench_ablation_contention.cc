// Ablation bench: dynamic contention-slot adjustment (Section 3.5) on/off.
//
// A registration storm hits a loaded cell.  With the dynamic controller the
// base station converts data slots into extra contention slots while the
// collision rate is high and reclaims them afterwards; the static variant
// keeps the single configured contention slot.
#include <cstdio>
#include <vector>

#include "osumac/osumac.h"

#include "bench_provenance.h"

using namespace osumac;

namespace {

struct StormOutcome {
  double p50 = 0;
  double p90 = 0;
  double max = 0;
  int registered = 0;
  std::int64_t collisions = 0;
};

StormOutcome RunStorm(bool dynamic, std::uint64_t seed) {
  mac::CellConfig config;
  config.seed = seed;
  config.mac.dynamic_contention_slots = dynamic;
  mac::Cell cell(config);
  std::vector<int> veterans;
  for (int i = 0; i < 6; ++i) {
    veterans.push_back(cell.AddSubscriber(false));
    cell.PowerOn(veterans.back());
  }
  cell.RunCycles(8);
  const auto sizes = traffic::SizeDistribution::Uniform(40, 500);
  // Saturated background: data demand would claim every assignable slot,
  // so without dynamic adjustment only the single reserved contention slot
  // remains for the storm.
  traffic::PoissonUplinkWorkload background(
      cell, veterans, traffic::MeanInterarrivalTicks(1.2, 6, 9, sizes.MeanBytes()), sizes,
      Rng(seed + 1));
  cell.RunCycles(20);

  std::vector<int> crowd;
  for (int i = 0; i < 6; ++i) {
    crowd.push_back(cell.AddSubscriber(false));
    cell.PowerOn(crowd.back());
  }
  cell.RunCycles(60);

  StormOutcome out;
  SampleSet latency;
  for (int node : crowd) {
    const auto& sub = cell.subscriber(node);
    if (sub.state() == mac::MobileSubscriber::State::kActive) ++out.registered;
    const auto& s = sub.stats().registration_latency_cycles;
    latency.Add(s.empty() ? 60.0 : s.samples()[0]);
  }
  out.p50 = latency.Median();
  out.p90 = latency.Quantile(0.9);
  out.max = latency.Max();
  out.collisions = cell.base_station().counters().collisions;
  return out;
}

}  // namespace

int main() {
  osumac::bench::PrintProvenance("bench_ablation_contention");
  std::printf("Ablation: dynamic contention-slot adjustment during a 6-unit storm\n");
  std::printf("%-22s %10s %10s %10s %12s %12s\n", "variant", "p50", "p90", "max",
              "registered", "collisions");
  for (const bool dynamic : {true, false}) {
    double p50 = 0, p90 = 0, max = 0, reg = 0, coll = 0;
    const int repeats = 5;
    for (int rep = 0; rep < repeats; ++rep) {
      const StormOutcome o = RunStorm(dynamic, 100 + static_cast<std::uint64_t>(rep));
      p50 += o.p50;
      p90 += o.p90;
      max = std::max(max, o.max);
      reg += o.registered;
      coll += static_cast<double>(o.collisions);
    }
    std::printf("%-22s %10.1f %10.1f %10.0f %12.1f %12.1f\n",
                dynamic ? "dynamic (paper)" : "static (1 slot)", p50 / repeats,
                p90 / repeats, max, reg / repeats, coll / repeats);
  }
  std::printf("\n(latencies in cycles, averaged over 5 seeds; expected: the dynamic\n"
              " controller cuts storm registration latency at the cost of briefly\n"
              " borrowing data slots)\n");
  return 0;
}
