// Ablation bench: dynamic contention-slot adjustment (Section 3.5) on/off.
//
// A registration storm hits a loaded cell.  With the dynamic controller the
// base station converts data slots into extra contention slots while the
// collision rate is high and reclaims them afterwards; the static variant
// keeps the single configured contention slot.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "osumac/osumac.h"

#include "bench_provenance.h"

using namespace osumac;

int main(int argc, char** argv) {
  osumac::bench::PrintProvenance("bench_ablation_contention");
  const int jobs = exp::JobsFromArgs(argc, argv, 1);
  const int repeats = 5;

  // Saturated background of 6 veterans, then 6 churn arrivals all at once
  // (gap 0): the storm.  Stats keep accumulating through the storm
  // (reset_stats = false) and arrivals are sampled at the end of the run,
  // with the full 60-cycle window as the straggler fallback.
  std::vector<exp::ScenarioSpec> specs;
  for (const bool dynamic : {true, false}) {
    for (int rep = 0; rep < repeats; ++rep) {
      exp::ScenarioSpec spec;
      spec.name = std::string(dynamic ? "dynamic" : "static") + "#" + std::to_string(rep);
      spec.data_users = 6;
      spec.gps_users = 0;
      spec.registration_cycles = 8;
      spec.warmup_cycles = 20;
      spec.measure_cycles = 60;
      spec.reset_stats_after_warmup = false;
      spec.workload.rho = 1.2;
      spec.churn.arrivals = 6;
      spec.mac.dynamic_contention_slots = dynamic;
      spec.seed = 100 + static_cast<std::uint64_t>(rep);
      specs.push_back(spec);
    }
  }
  const std::vector<exp::RunResult> results = exp::SweepRunner(jobs).Run(specs);

  std::printf("Ablation: dynamic contention-slot adjustment during a 6-unit storm\n");
  std::printf("%-22s %10s %10s %10s %12s %12s\n", "variant", "p50", "p90", "max",
              "registered", "collisions");
  std::size_t next = 0;
  for (const bool dynamic : {true, false}) {
    double p50 = 0, p90 = 0, max = 0, reg = 0, coll = 0;
    for (int rep = 0; rep < repeats; ++rep) {
      const exp::RunResult& r = results[next++];
      SampleSet latency;
      for (const double sample : r.churn_registration_latency) latency.Add(sample);
      p50 += latency.Median();
      p90 += latency.Quantile(0.9);
      max = std::max(max, latency.Max());
      reg += r.churn_registered;
      coll += static_cast<double>(r.bs.collisions);
    }
    std::printf("%-22s %10.1f %10.1f %10.0f %12.1f %12.1f\n",
                dynamic ? "dynamic (paper)" : "static (1 slot)", p50 / repeats,
                p90 / repeats, max, reg / repeats, coll / repeats);
  }
  std::printf("\n(latencies in cycles, averaged over 5 seeds; expected: the dynamic\n"
              " controller cuts storm registration latency at the cost of briefly\n"
              " borrowing data slots)\n");
  return 0;
}
