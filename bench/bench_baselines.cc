// Extension bench: the Section-4 survey protocols (PRMA, D-TDMA, RAMA,
// DRMA, slotted ALOHA) on a common abstract slotted channel, swept over
// offered load.  The paper declines this comparison as unfair between
// full systems; here it isolates just the *contention mechanisms*, which
// is what the survey discusses (e.g. "PRMA suffers from low utilization in
// medium to heavy traffic loads").
#include <cstdio>
#include <memory>
#include <vector>

#include "osumac/osumac.h"

#include "bench_provenance.h"

using namespace osumac;
using namespace osumac::baselines;

int main() {
  osumac::bench::PrintProvenance("bench_baselines");
  std::vector<std::unique_ptr<BaselineProtocol>> protocols;
  protocols.push_back(std::make_unique<SlottedAloha>());
  protocols.push_back(std::make_unique<Prma>());
  protocols.push_back(std::make_unique<Dtdma>());
  protocols.push_back(std::make_unique<Fama>());
  protocols.push_back(std::make_unique<Rqma>());
  protocols.push_back(std::make_unique<Rama>());
  protocols.push_back(std::make_unique<Drma>());

  std::printf("Survey protocols on a 16-slot frame, 20 data stations\n");
  std::printf("%-14s %8s %11s %11s %11s %9s\n", "protocol", "offered", "throughput",
              "delay(frm)", "collisions", "dropped");
  for (double per_station : {0.05, 0.2, 0.4, 0.8, 1.6}) {
    BaselineWorkload workload;
    workload.data_stations = 20;
    workload.packets_per_station_per_frame = per_station;
    workload.frames = 4000;
    std::printf("-- offered load %.2f packets/slot --\n", per_station * 20 / 16.0);
    for (const auto& protocol : protocols) {
      Rng rng(42);
      const BaselineResult r = protocol->Run(workload, rng);
      std::printf("%-14s %8.3f %11.3f %11.2f %11.3f %9lld\n", r.protocol.c_str(),
                  r.offered_load, r.throughput, r.mean_delay_frames, r.collision_rate,
                  static_cast<long long>(r.dropped));
    }
  }
  std::printf("\n(expected: ALOHA saturates near 1/e; PRMA degrades at heavy load;\n"
              " RAMA's auctions are collision-free; DRMA approaches full usage;\n"
              " FAMA pays only minislots for collisions; RQMA drops late packets\n"
              " instead of queueing unboundedly)\n");
  return 0;
}
