// Extension bench: the Section-4 survey protocols (PRMA, D-TDMA, RAMA,
// DRMA, slotted ALOHA) on a common abstract slotted channel, swept over
// offered load.  The paper declines this comparison as unfair between
// full systems; here it isolates just the *contention mechanisms*, which
// is what the survey discusses (e.g. "PRMA suffers from low utilization in
// medium to heavy traffic loads").
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "osumac/osumac.h"

#include "bench_provenance.h"

using namespace osumac;
using namespace osumac::baselines;

int main(int argc, char** argv) {
  osumac::bench::PrintProvenance("bench_baselines");
  const int jobs = exp::JobsFromArgs(argc, argv, 1);

  // Each grid cell is independent (own protocol instance, own Rng), so the
  // load x protocol grid runs through the generic parallel map.
  const std::vector<std::function<std::unique_ptr<BaselineProtocol>()>> factories = {
      [] { return std::make_unique<SlottedAloha>(); },
      [] { return std::make_unique<Prma>(); },
      [] { return std::make_unique<Dtdma>(); },
      [] { return std::make_unique<Fama>(); },
      [] { return std::make_unique<Rqma>(); },
      [] { return std::make_unique<Rama>(); },
      [] { return std::make_unique<Drma>(); },
  };
  const std::vector<double> loads = {0.05, 0.2, 0.4, 0.8, 1.6};

  const int count = static_cast<int>(loads.size() * factories.size());
  const std::vector<BaselineResult> results =
      exp::ParallelMap(count, jobs, [&](int i) {
        const std::size_t load_index = static_cast<std::size_t>(i) / factories.size();
        const std::size_t protocol_index = static_cast<std::size_t>(i) % factories.size();
        BaselineWorkload workload;
        workload.data_stations = 20;
        workload.packets_per_station_per_frame = loads[load_index];
        workload.frames = 4000;
        Rng rng(42);
        return factories[protocol_index]()->Run(workload, rng);
      });

  std::printf("Survey protocols on a 16-slot frame, 20 data stations\n");
  std::printf("%-14s %8s %11s %11s %11s %9s\n", "protocol", "offered", "throughput",
              "delay(frm)", "collisions", "dropped");
  std::size_t next = 0;
  for (const double per_station : loads) {
    std::printf("-- offered load %.2f packets/slot --\n", per_station * 20 / 16.0);
    for (std::size_t p = 0; p < factories.size(); ++p) {
      const BaselineResult& r = results[next++];
      std::printf("%-14s %8.3f %11.3f %11.2f %11.3f %9lld\n", r.protocol.c_str(),
                  r.offered_load, r.throughput, r.mean_delay_frames, r.collision_rate,
                  static_cast<long long>(r.dropped));
    }
  }
  std::printf("\n(expected: ALOHA saturates near 1/e; PRMA degrades at heavy load;\n"
              " RAMA's auctions are collision-free; DRMA approaches full usage;\n"
              " FAMA pays only minislots for collisions; RQMA drops late packets\n"
              " instead of queueing unboundedly)\n");
  return 0;
}
