// Ablation bench: the downlink ARQ extension vs the paper's unacknowledged
// forward channel.
//
// The paper keeps the forward channel unacknowledged because reverse
// bandwidth is scarce; this bench quantifies both sides of that trade on a
// fading forward channel with simultaneous uplink load:
//   - downlink residual loss rate (ARQ should drive it to ~0),
//   - reverse-link utilization (ARQ's ack packets eat into it),
//   - uplink packet delay (ack packets compete for slots).
#include <cstdio>

#include <algorithm>
#include <vector>

#include "osumac/osumac.h"

#include "bench_provenance.h"

using namespace osumac;

namespace {

exp::ScenarioSpec ArqSpec(bool arq, double uplink_rho) {
  exp::ScenarioSpec spec;
  spec.name = std::string(arq ? "arq" : "paper") + "_rho" + std::to_string(uplink_rho);
  spec.data_users = 8;
  spec.gps_users = 0;
  spec.registration_cycles = 10;
  spec.warmup_cycles = 30;
  spec.measure_cycles = 600;
  spec.seed = 99;
  spec.workload.rho = uplink_rho;
  spec.workload.downlink_interarrival_cycles = 4;
  spec.workload.downlink_sizes = traffic::SizeDistribution::Fixed(220);
  spec.mac.downlink_arq = arq;
  spec.forward.kind = mac::ChannelModelConfig::Kind::kGilbertElliott;
  spec.forward.ge.p_good_to_bad = 0.004;
  spec.forward.ge.p_bad_to_good = 0.05;
  spec.forward.ge.error_prob_bad = 0.4;
  return spec;
}

double DownlinkLoss(const exp::RunResult& r) {
  const std::int64_t offered = r.downlink_messages_generated - 2;  // allow 2 in flight
  return offered > 0
             ? std::max(0.0, 1.0 - static_cast<double>(r.downlink_messages_completed) /
                                       static_cast<double>(offered))
             : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  osumac::bench::PrintProvenance("bench_ablation_arq");
  const int jobs = exp::JobsFromArgs(argc, argv, 1);

  std::vector<exp::ScenarioSpec> specs;
  for (const double rho : {0.3, 0.6, 0.9}) {
    for (const bool arq : {false, true}) specs.push_back(ArqSpec(arq, rho));
  }
  const std::vector<exp::RunResult> results = exp::SweepRunner(jobs).Run(specs);

  std::printf("Ablation: downlink ARQ (extension) vs the paper's unacked forward channel\n");
  std::printf("Fading forward channel (Gilbert-Elliott), downlink e-mail + uplink load\n\n");
  std::printf("%8s %10s | %12s %10s %10s %8s %8s\n", "up_rho", "variant", "dl_loss",
              "rev_util", "up_delay", "retx", "acks");
  std::size_t next = 0;
  for (const double rho : {0.3, 0.6, 0.9}) {
    for (const bool arq : {false, true}) {
      const exp::RunResult& r = results[next++];
      std::printf("%8.1f %10s | %12.4f %10.3f %10.2f %8lld %8lld\n", rho,
                  arq ? "ARQ" : "paper", DownlinkLoss(r), r.figure.utilization,
                  r.figure.mean_packet_delay_cycles,
                  static_cast<long long>(r.bs.forward_retransmissions),
                  static_cast<long long>(r.bs.forward_acks_received));
    }
  }
  std::printf("\n(expected: ARQ eliminates residual downlink loss at the cost of\n"
              " reverse-channel ack traffic, which grows with downlink volume)\n");
  return 0;
}
