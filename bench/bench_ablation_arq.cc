// Ablation bench: the downlink ARQ extension vs the paper's unacknowledged
// forward channel.
//
// The paper keeps the forward channel unacknowledged because reverse
// bandwidth is scarce; this bench quantifies both sides of that trade on a
// fading forward channel with simultaneous uplink load:
//   - downlink residual loss rate (ARQ should drive it to ~0),
//   - reverse-link utilization (ARQ's ack packets eat into it),
//   - uplink packet delay (ack packets compete for slots).
#include <cstdio>

#include <algorithm>

#include "osumac/osumac.h"

#include "bench_provenance.h"

using namespace osumac;

namespace {

struct Outcome {
  double downlink_loss = 0;
  double uplink_utilization = 0;
  double uplink_delay = 0;
  std::int64_t retransmissions = 0;
  std::int64_t ack_packets = 0;
};

Outcome Run(bool arq, double uplink_rho, std::uint64_t seed) {
  mac::CellConfig config;
  config.seed = seed;
  config.mac.downlink_arq = arq;
  config.forward.kind = mac::ChannelModelConfig::Kind::kGilbertElliott;
  config.forward.ge.p_good_to_bad = 0.004;
  config.forward.ge.p_bad_to_good = 0.05;
  config.forward.ge.error_prob_bad = 0.4;
  mac::Cell cell(config);
  std::vector<int> nodes;
  for (int i = 0; i < 8; ++i) {
    nodes.push_back(cell.AddSubscriber(false));
    cell.PowerOn(nodes.back());
  }
  cell.RunCycles(10);
  const auto sizes = traffic::SizeDistribution::Uniform(40, 500);
  traffic::PoissonUplinkWorkload up(
      cell, nodes, traffic::MeanInterarrivalTicks(uplink_rho, 8, 9, sizes.MeanBytes()),
      sizes, Rng(seed + 1));
  traffic::PoissonDownlinkWorkload down(cell, nodes, 4 * mac::kCycleTicks,
                                        traffic::SizeDistribution::Fixed(220), Rng(seed + 2));
  cell.RunCycles(30);
  cell.ResetStats();
  const auto generated_before = down.messages_generated();
  cell.RunCycles(600);
  const auto offered =
      down.messages_generated() - generated_before - 2;  // allow 2 in flight

  Outcome out;
  const auto& bs = cell.base_station().counters();
  const auto completed =
      static_cast<std::int64_t>(cell.metrics().downlink_message_delay_cycles.size());
  out.downlink_loss =
      offered > 0 ? std::max(0.0, 1.0 - static_cast<double>(completed) /
                                            static_cast<double>(offered))
                  : 0.0;
  out.uplink_utilization = cell.metrics().Utilization();
  const auto m = metrics::ComputeFigureMetrics(cell, nodes);
  out.uplink_delay = m.mean_packet_delay_cycles;
  out.retransmissions = bs.forward_retransmissions;
  out.ack_packets = bs.forward_acks_received;
  return out;
}

}  // namespace

int main() {
  osumac::bench::PrintProvenance("bench_ablation_arq");
  std::printf("Ablation: downlink ARQ (extension) vs the paper's unacked forward channel\n");
  std::printf("Fading forward channel (Gilbert-Elliott), downlink e-mail + uplink load\n\n");
  std::printf("%8s %10s | %12s %10s %10s %8s %8s\n", "up_rho", "variant", "dl_loss",
              "rev_util", "up_delay", "retx", "acks");
  for (double rho : {0.3, 0.6, 0.9}) {
    for (const bool arq : {false, true}) {
      const Outcome o = Run(arq, rho, 99);
      std::printf("%8.1f %10s | %12.4f %10.3f %10.2f %8lld %8lld\n", rho,
                  arq ? "ARQ" : "paper", o.downlink_loss, o.uplink_utilization,
                  o.uplink_delay, static_cast<long long>(o.retransmissions),
                  static_cast<long long>(o.ack_packets));
    }
  }
  std::printf("\n(expected: ARQ eliminates residual downlink loss at the cost of\n"
              " reverse-channel ack traffic, which grows with downlink volume)\n");
  return 0;
}
