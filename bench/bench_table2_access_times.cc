// Regenerates Table 2: "Reverse channel access time of the two formats."
//
// Note the erratum documented in EXPERIMENTS.md: the paper's printed
// format-2 column repeats 2.98625 for data slot 8; the arithmetic from the
// stated cycle structure gives 3.39000 for slot 8 and 3.79375 for slot 9.
#include <cstdio>

#include "osumac/osumac.h"

#include "bench_provenance.h"

using namespace osumac;
using mac::ReverseCycleLayout;
using mac::ReverseFormat;

int main() {
  osumac::bench::PrintProvenance("bench_table2_access_times");
  const ReverseCycleLayout f1(ReverseFormat::kFormat1);
  const ReverseCycleLayout f2(ReverseFormat::kFormat2);

  std::printf("Table 2: reverse channel access times (seconds from cycle start)\n");
  std::printf("  %-14s %10s %10s\n", "", "Format 1", "Format 2");
  for (int i = 0; i < 8; ++i) {
    char c1[16], c2[16] = "--";
    std::snprintf(c1, sizeof c1, "%.5f", ToSeconds(f1.GpsSlot(i).begin));
    if (i < f2.gps_slot_count()) {
      std::snprintf(c2, sizeof c2, "%.5f", ToSeconds(f2.GpsSlot(i).begin));
    }
    std::printf("  GPS slot %-5d %10s %10s\n", i + 1, c1, c2);
  }
  for (int i = 0; i < 9; ++i) {
    char c1[16] = "--", c2[16] = "--";
    if (i < f1.data_slot_count()) {
      std::snprintf(c1, sizeof c1, "%.5f", ToSeconds(f1.DataSlot(i).begin));
    }
    if (i < f2.data_slot_count()) {
      std::snprintf(c2, sizeof c2, "%.5f", ToSeconds(f2.DataSlot(i).begin));
    }
    std::printf("  Data slot %-4d %10s %10s\n", i + 1, c1, c2);
  }
  std::printf("\n  (format 1: 8 GPS + 8 data slots; format 2: 3 GPS + 9 data slots\n"
              "   + 0.03375 s guard; both pad to the 3.984375 s cycle)\n");
  return 0;
}
