// Hot-path micro-benchmarks of the PHY/FEC simulation core, feeding the
// BENCH_perf.json regression gate (tools/check_perf.py).
//
// Each phase times the operations the 52-point figure sweep actually spends
// its wall-clock on:
//   hotpath_rs_encode          RS(64,48) systematic encode (EncodeInto)
//   hotpath_rs_decode_clean    decode of untouched codewords — the
//                              syndrome-first fast path
//   hotpath_rs_decode_corrupt  decode with 4 symbol errors — the full
//                              Berlekamp-Massey / Chien / Forney pipeline
//   hotpath_channel_uniform    UniformErrorModel per-symbol Bernoulli loop
//   hotpath_channel_fast       FastUniformErrorModel geometric skip-sampling
//   hotpath_cycle_untraced     a short scenario run with no trace attached
//   hotpath_cycle_traced       the same scenario with an EventTrace attached
//   hotpath_cycle_profiled     the same scenario with an obs::Profiler
//                              installed (every OSUMAC_PROFILE_ZONE live)
//
// The gate checks *relative* invariants that hold on any machine (clean
// decode must beat corrupt decode, fast channel must beat per-symbol, the
// untraced cycle step must not cost more than the traced one), so absolute
// machine speed never breaks CI.
//
// With --merge-into FILE the phases are spliced into an existing
// BENCH_perf.json written by make_figures (replacing any previous
// hotpath_* entries); otherwise a standalone JSON goes to --out or stdout.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_provenance.h"
#include "common/rng.h"
#include "exp/runner.h"
#include "exp/scenario.h"
#include "fec/reed_solomon.h"
#include "obs/event_trace.h"
#include "obs/profiler.h"
#include "obs/wallclock.h"
#include "phy/channel.h"
#include "phy/error_model.h"

using namespace osumac;
using fec::GfElem;

namespace {

std::vector<GfElem> RandomData(int k, Rng& rng) {
  std::vector<GfElem> data(static_cast<std::size_t>(k));
  for (auto& b : data) b = static_cast<GfElem>(rng.UniformInt(0, 255));
  return data;
}

void BenchRsPhases(obs::WallTimerRegistry& wall, int reps) {
  const auto& rs = fec::ReedSolomon::Osu6448();
  Rng rng(11);
  constexpr int kWords = 4000;
  std::vector<std::vector<GfElem>> datas;
  std::vector<std::vector<GfElem>> clean;
  std::vector<std::vector<GfElem>> corrupt;
  for (int i = 0; i < kWords; ++i) {
    datas.push_back(RandomData(rs.k(), rng));
    clean.push_back(rs.Encode(datas.back()));
    corrupt.push_back(clean.back());
    for (int e = 0; e < 4; ++e) {  // 4 errors: inside capability, full pipeline
      corrupt.back()[static_cast<std::size_t>(13 * (e + 1))] ^=
          static_cast<GfElem>(rng.UniformInt(1, 255));
    }
  }
  std::vector<GfElem> out(static_cast<std::size_t>(rs.n()));
  fec::DecodeResult result;
  for (int r = 0; r < reps; ++r) {
    {
      obs::ScopedWallTimer t(wall, "hotpath_rs_encode");
      for (const auto& d : datas) rs.EncodeInto(d, out);
    }
    {
      obs::ScopedWallTimer t(wall, "hotpath_rs_decode_clean");
      for (const auto& cw : clean) {
        if (!rs.DecodeInto(cw, &result)) std::abort();
      }
    }
    {
      obs::ScopedWallTimer t(wall, "hotpath_rs_decode_corrupt");
      for (const auto& cw : corrupt) {
        if (!rs.DecodeInto(cw, &result)) std::abort();
      }
    }
  }
}

void BenchChannelPhases(obs::WallTimerRegistry& wall, int reps) {
  constexpr double kErrProb = 0.002;  // the robustness grid's uniform point
  constexpr int kWords = 20000;
  const auto& rs = fec::ReedSolomon::Osu6448();
  Rng data_rng(21);
  const auto cw = rs.Encode(RandomData(rs.k(), data_rng));
  std::vector<GfElem> buf(cw.size());
  for (int r = 0; r < reps; ++r) {
    {
      phy::UniformErrorModel slow(kErrProb);
      Rng rng(31);
      obs::ScopedWallTimer t(wall, "hotpath_channel_uniform");
      for (int i = 0; i < kWords; ++i) {
        buf = cw;
        slow.Corrupt(buf, rng);
      }
    }
    {
      phy::FastUniformErrorModel fast(kErrProb, 31);
      Rng rng(31);  // unused by the fast model; same call shape
      obs::ScopedWallTimer t(wall, "hotpath_channel_fast");
      for (int i = 0; i < kWords; ++i) {
        buf = cw;
        fast.Corrupt(buf, rng);
      }
    }
  }
}

exp::ScenarioSpec CycleSpec() {
  exp::ScenarioSpec spec;
  spec.name = "hotpath_cycle";
  spec.workload.rho = 0.8;
  spec.warmup_cycles = 20;
  spec.measure_cycles = 150;
  spec.seed = 2001;
  return spec;
}

void BenchCyclePhases(obs::WallTimerRegistry& wall, int reps) {
  for (int r = 0; r < reps; ++r) {
    {
      obs::ScopedWallTimer t(wall, "hotpath_cycle_untraced");
      exp::RunScenario(CycleSpec());
    }
    {
      obs::EventTrace trace;
      exp::RunHooks hooks;
      hooks.after_warmup = [&trace](mac::Cell& cell) { cell.AttachTrace(&trace); };
      obs::ScopedWallTimer t(wall, "hotpath_cycle_traced");
      exp::RunScenario(CycleSpec(), hooks);
    }
    {
      // Live profiler: every zone in the cycle pipeline records.  The gate
      // bounds what an *installed* profiler costs relative to the untraced
      // baseline; when built with -DOSUMAC_PROFILER=OFF the zones compile
      // out and this phase collapses onto the untraced one.
      obs::Profiler profiler;
      const obs::Profiler::ThreadScope scope(&profiler);
      obs::ScopedWallTimer t(wall, "hotpath_cycle_profiled");
      exp::RunScenario(CycleSpec());
    }
  }
}

/// Splices this run's phase lines into an existing BENCH_perf.json,
/// dropping any previous hotpath_* entries.  Relies on the exact
/// WriteWallTimersJson layout: one `    {"name": ...}` line per phase
/// between `  "phases": [` and `  ]`.
bool MergeInto(const std::string& path, const obs::WallTimerRegistry& wall,
               const std::string& provenance) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_hotpaths: cannot read %s\n", path.c_str());
    return false;
  }
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  in.close();

  std::ostringstream ours_stream;
  obs::WriteWallTimersJson(ours_stream, wall, provenance);
  std::vector<std::string> ours;
  {
    std::istringstream is(ours_stream.str());
    bool in_phases = false;
    for (std::string line; std::getline(is, line);) {
      if (line == "  \"phases\": [") {
        in_phases = true;
        continue;
      }
      if (line == "  ]") in_phases = false;
      if (in_phases) ours.push_back(line);
    }
  }

  std::vector<std::string> merged;
  bool in_phases = false;
  bool spliced = false;
  for (const std::string& line : lines) {
    if (line == "  \"phases\": [") in_phases = true;
    if (in_phases && line.find("\"name\": \"hotpath_") != std::string::npos) {
      continue;  // replace stale entries from a previous merge
    }
    if (in_phases && line == "  ]") {
      // Existing last phase line needs a trailing comma before our block.
      if (!merged.empty() && !ours.empty()) {
        std::string& prev = merged.back();
        if (!prev.empty() && prev.back() != ',' && prev.back() != '[') prev += ',';
      }
      for (std::size_t i = 0; i < ours.size(); ++i) {
        std::string entry = ours[i];
        if (!entry.empty() && entry.back() == ',') entry.pop_back();
        if (i + 1 < ours.size()) entry += ',';
        merged.push_back(entry);
      }
      in_phases = false;
      spliced = true;
    }
    merged.push_back(line);
  }
  if (!spliced) {
    std::fprintf(stderr, "bench_hotpaths: %s does not look like BENCH_perf.json\n",
                 path.c_str());
    return false;
  }
  std::ofstream out(path);
  for (const std::string& line : merged) out << line << '\n';
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  std::string merge_into;
  std::string out_path;
  int reps = 5;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--merge-into" && i + 1 < argc) {
      merge_into = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_hotpaths [--merge-into BENCH_perf.json] "
                   "[--out FILE] [--reps N]\n");
      return 2;
    }
  }
  if (reps < 1) reps = 1;

  bench::PrintProvenance("bench_hotpaths", 0, "reps=" + std::to_string(reps));
  obs::WallTimerRegistry wall;
  BenchRsPhases(wall, reps);
  BenchChannelPhases(wall, reps);
  BenchCyclePhases(wall, reps);
  wall.Report(std::cout);

  const std::string provenance =
      obs::ProvenanceLine("bench_hotpaths", 0, "reps=" + std::to_string(reps));
  if (!merge_into.empty()) {
    if (!MergeInto(merge_into, wall, provenance)) return 1;
    std::printf("merged hotpath phases into %s\n", merge_into.c_str());
  } else if (!out_path.empty()) {
    std::ofstream out(out_path);
    obs::WriteWallTimersJson(out, wall, provenance);
    if (!out) {
      std::fprintf(stderr, "bench_hotpaths: cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    obs::WriteWallTimersJson(std::cout, wall, provenance);
  }
  return 0;
}
