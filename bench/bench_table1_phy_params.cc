// Regenerates Table 1: "List of parameters in the physical layer that
// pertain to the MAC design."  Every number is *derived* from the symbol
// rates and framing constants, exactly as the paper derives them.
#include <cstdio>

#include "osumac/osumac.h"

#include "bench_provenance.h"

using namespace osumac;
using namespace osumac::phy;

namespace {
void Row(const char* name, const char* fwd, const char* rev) {
  std::printf("  %-46s %14s %14s\n", name, fwd, rev);
}
void RowD(const char* name, double fwd, double rev, const char* fmt = "%.6g") {
  char a[32], b[32];
  std::snprintf(a, sizeof a, fmt, fwd);
  std::snprintf(b, sizeof b, fmt, rev);
  Row(name, a, b);
}
}  // namespace

int main() {
  osumac::bench::PrintProvenance("bench_table1_phy_params");
  std::printf("Table 1: physical-layer parameters pertaining to the MAC design\n");
  std::printf("  %-46s %14s %14s\n", "", "Forward", "Reverse");
  std::printf("  -- general physical layer characteristics --\n");
  RowD("Channel symbol rate (symbols/s)", kForwardSymbolRate, kReverseSymbolRate);
  RowD("Coding rate (coded bits/symbol)", kBitsPerSymbol, kBitsPerSymbol);
  RowD("Information symbols in a pilot frame", kInfoSymbolsPerPilotFrame,
       kInfoSymbolsPerPilotFrame);
  RowD("Channel symbols in a pilot frame", kSymbolsPerPilotFrame, kSymbolsPerPilotFrame);
  RowD("Information bits per RS(64,48) codeword", kRsInfoBits, kRsInfoBits);
  RowD("Bits per RS(64,48) codeword", kRsCodewordBits, kRsCodewordBits);

  std::printf("  -- packet size --\n");
  RowD("RS codewords per packet", 1, 1);
  RowD("Pilot frames per regular data packet", kPilotFramesPerCodeword,
       kPilotFramesPerCodeword);
  RowD("Channel symbols per regular packet", kRegularPacketSymbols, kRegularPacketSymbols);
  RowD("Time per regular packet (s)", ToSeconds(kRegularPacketForwardTicks),
       ToSeconds(kRegularPacketReverseTicks));

  std::printf("  -- cycle preamble --\n");
  Row("Cycle preamble length (channel symbols)", "450", "n/a");
  Row("Time per cycle preamble (s)", "0.140625", "n/a");

  std::printf("  -- packet parameters on the reverse channel --\n");
  std::printf("  %-46s %14s %14s\n", "", "GPS", "Regular");
  RowD("Packet size (information bits)", kGpsInfoBits, mac::kPacketInfoBytes * 8);
  RowD("Packet size (channel symbols)", kGpsBodySymbols, kRegularPacketSymbols);
  RowD("Packet preamble (channel symbols)", kGpsPreambleSymbols, kRegularPreambleSymbols);
  RowD("Packet preamble (s)", ToSeconds(ReverseSymbols(kGpsPreambleSymbols)),
       ToSeconds(ReverseSymbols(kRegularPreambleSymbols)), "%.5f");
  RowD("Packet postamble (channel symbols)", kGpsPostambleSymbols, kRegularPostambleSymbols);
  RowD("Packet postamble (s)", ToSeconds(ReverseSymbols(kGpsPostambleSymbols)),
       ToSeconds(ReverseSymbols(kRegularPostambleSymbols)), "%.5f");
  RowD("Packet guard time (channel symbols)", kPacketGuardSymbols, kPacketGuardSymbols);
  RowD("Packet guard time (s)", ToSeconds(ReverseSymbols(kPacketGuardSymbols)),
       ToSeconds(ReverseSymbols(kPacketGuardSymbols)), "%.4f");
  RowD("Total length (channel symbols)", kGpsSlotSymbols, kReverseDataSlotSymbols);
  RowD("Total length (s)", ToSeconds(kGpsSlotTicks), ToSeconds(kReverseDataSlotTicks),
       "%.5f");

  std::printf("\nDerived protocol constants (Sections 3.3-3.4):\n");
  std::printf("  forward data slots per cycle N = %d (paper: 37)\n", mac::kForwardDataSlots);
  std::printf("  max reverse data slots     M = %d (paper: 9)\n", mac::kMaxReverseDataSlots);
  std::printf("  notification cycle length    = %.6f s (paper: 3.9844)\n",
              ToSeconds(mac::kCycleTicks));
  std::printf("  reverse cycle shift          = %.5f s (paper: 0.30125)\n",
              ToSeconds(mac::kReverseShiftTicks));
  std::printf("  control fields               = %d bits in 2 codewords, %d reserved "
              "(paper: 630 / 138)\n",
              mac::kControlFieldBits, mac::kControlFieldReservedBits);
  return 0;
}
