// Regenerates Figure 10: control overhead — the ratio of reservation
// packets (transmitted in contention slots) to data packets (transmitted
// in data slots) — versus the load index.
//
// Expected shape (paper): DECREASES with load, "because as the load
// increases, reservation requests are usually piggybacked in the
// reservation bit of the packets sent uplink".
#include <cstdio>

#include "sweep_common.h"

#include "bench_provenance.h"

using namespace osumac;
using namespace osumac::bench;

int main() {
  osumac::bench::PrintProvenance("bench_fig10_control_overhead");
  metrics::TablePrinter table({"rho", "ctrl_overhead", "resv_sent", "data_sent"}, 14);
  std::printf("Figure 10: control overhead (reservation packets / data packets)\n");
  table.PrintHeader();
  for (double rho : LoadSweep()) {
    SweepPoint point;
    point.rho = rho;
    const SweepResult r = RunLoadPoint(point);
    table.PrintRow({rho, r.figure.control_overhead,
                    static_cast<double>(r.bs.reservation_packets_received),
                    static_cast<double>(r.bs.data_packets_received)});
  }
  std::printf("\n(paper Fig. 10 shape: overhead decreases as load increases)\n");
  return 0;
}
