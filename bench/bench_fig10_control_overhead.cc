// Regenerates Figure 10: control overhead — the ratio of reservation
// packets (transmitted in contention slots) to data packets (transmitted
// in data slots) — versus the load index.
//
// Expected shape (paper): DECREASES with load, "because as the load
// increases, reservation requests are usually piggybacked in the
// reservation bit of the packets sent uplink".
#include <cstdio>
#include <vector>

#include "osumac/osumac.h"

#include "bench_provenance.h"

using namespace osumac;

int main(int argc, char** argv) {
  osumac::bench::PrintProvenance("bench_fig10_control_overhead");
  const int jobs = exp::JobsFromArgs(argc, argv, 1);

  std::vector<exp::ScenarioSpec> specs;
  for (const double rho : exp::LoadSweep()) specs.push_back(exp::LoadPoint(rho));
  const std::vector<exp::RunResult> results = exp::SweepRunner(jobs).Run(specs);

  metrics::TablePrinter table({"rho", "ctrl_overhead", "resv_sent", "data_sent"}, 14);
  std::printf("Figure 10: control overhead (reservation packets / data packets)\n");
  table.PrintHeader();
  for (std::size_t i = 0; i < results.size(); ++i) {
    const exp::RunResult& r = results[i];
    table.PrintRow({specs[i].workload.rho, r.figure.control_overhead,
                    static_cast<double>(r.bs.reservation_packets_received),
                    static_cast<double>(r.bs.data_packets_received)});
  }
  std::printf("\n(paper Fig. 10 shape: overhead decreases as load increases)\n");
  return 0;
}
