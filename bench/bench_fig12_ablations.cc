// Regenerates Figure 12:
//   (a) bandwidth gained by the second set of control fields — the share
//       of data packets carried in the last reverse data slot (which
//       overlaps CF1 of the next cycle and is only usable because its user
//       can listen to CF2 instead).  Paper: 5-14 %, growing with load.
//   (b) average number of reverse data slots used per cycle with 1 vs 4
//       GPS users — dynamic slot re-adjustment fuses the unused GPS slots
//       of format 2 into a 9th data slot.  Paper: up to ~15 % more
//       bandwidth at high load.
// Also runs the matching ablations (second CF disabled / dynamic slots
// disabled) to isolate each mechanism's contribution.
#include <cstdio>

#include "sweep_common.h"

#include "bench_provenance.h"

using namespace osumac;
using namespace osumac::bench;

int main() {
  osumac::bench::PrintProvenance("bench_fig12_ablations");
  std::printf("Figure 12(a): bandwidth gain from the second set of control fields\n");
  metrics::TablePrinter ta({"rho", "cf2_gain", "last_slot_pkts", "all_pkts",
                            "util_with", "util_without"},
                           14);
  ta.PrintHeader();
  for (double rho : LoadSweep()) {
    SweepPoint with_cf2;
    with_cf2.rho = rho;
    const SweepResult on = RunLoadPoint(with_cf2);
    SweepPoint without_cf2 = with_cf2;
    without_cf2.mac.use_second_control_field = false;
    const SweepResult off = RunLoadPoint(without_cf2);
    ta.PrintRow({rho, on.figure.second_cf_gain,
                 static_cast<double>(on.bs.last_slot_data_packets),
                 static_cast<double>(on.bs.data_packets_received), on.figure.utilization,
                 off.figure.utilization});
  }
  std::printf("(paper: 5%% to 14%% of packets ride in the last slot)\n\n");

  std::printf("Figure 12(b): average data slots used per cycle, 1 vs 4 GPS users\n");
  metrics::TablePrinter tb({"rho", "gps1_dynamic", "gps1_static", "gps4_dynamic",
                            "gps4_static"},
                           14);
  tb.PrintHeader();
  for (double rho : LoadSweep()) {
    std::vector<double> row = {rho};
    for (int gps : {1, 4}) {
      for (bool dynamic : {true, false}) {
        SweepPoint point;
        point.rho = rho;
        point.gps_users = gps;
        point.mac.dynamic_gps_slots = dynamic;
        // Hold the per-user offered byte rate constant across the arms by
        // computing the interarrival for the dynamic format's slot count
        // (RunLoadPoint already derives d from the format; with dynamic
        // disabled, format 1's 8 slots make the same traffic a heavier
        // relative load — exactly the bandwidth loss the figure shows).
        const SweepResult r = RunLoadPoint(point);
        row.push_back(r.figure.avg_data_slots_used);
      }
    }
    tb.PrintRow(row);
  }
  std::printf("(paper: with <= 3 GPS users the fused slot buys up to ~15%% more\n"
              " bandwidth at high load; with 4+ GPS users the arms coincide)\n");
  return 0;
}
