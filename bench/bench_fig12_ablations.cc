// Regenerates Figure 12:
//   (a) bandwidth gained by the second set of control fields — the share
//       of data packets carried in the last reverse data slot (which
//       overlaps CF1 of the next cycle and is only usable because its user
//       can listen to CF2 instead).  Paper: 5-14 %, growing with load.
//   (b) average number of reverse data slots used per cycle with 1 vs 4
//       GPS users — dynamic slot re-adjustment fuses the unused GPS slots
//       of format 2 into a 9th data slot.  Paper: up to ~15 % more
//       bandwidth at high load.
// Also runs the matching ablations (second CF disabled / dynamic slots
// disabled) to isolate each mechanism's contribution.
#include <cstdio>
#include <vector>

#include "osumac/osumac.h"

#include "bench_provenance.h"

using namespace osumac;

int main(int argc, char** argv) {
  osumac::bench::PrintProvenance("bench_fig12_ablations");
  const int jobs = exp::JobsFromArgs(argc, argv, 1);

  // Part (a): per rho, second control field on then off.
  std::vector<exp::ScenarioSpec> cf_specs;
  for (const double rho : exp::LoadSweep()) {
    exp::ScenarioSpec with_cf2 = exp::LoadPoint(rho);
    cf_specs.push_back(with_cf2);
    exp::ScenarioSpec without_cf2 = with_cf2;
    without_cf2.name += "_nocf2";
    without_cf2.mac.use_second_control_field = false;
    cf_specs.push_back(without_cf2);
  }
  // Part (b): per rho, the {1, 4} GPS x {dynamic, static} grid.  Workload
  // interarrivals derive from the format's slot count regardless of the
  // dynamic flag (ScenarioSpec::DataSlotsForLoad), holding the per-user
  // offered byte rate constant across the arms; with dynamic disabled,
  // format 2's fused 9th slot is lost — exactly the bandwidth the figure
  // shows.
  std::vector<exp::ScenarioSpec> slot_specs;
  for (const double rho : exp::LoadSweep()) {
    for (const int gps : {1, 4}) {
      for (const bool dynamic : {true, false}) {
        exp::ScenarioSpec point = exp::LoadPoint(rho);
        point.name += "_gps" + std::to_string(gps) + (dynamic ? "_dyn" : "_static");
        point.gps_users = gps;
        point.mac.dynamic_gps_slots = dynamic;
        slot_specs.push_back(point);
      }
    }
  }
  std::vector<exp::ScenarioSpec> specs = cf_specs;
  specs.insert(specs.end(), slot_specs.begin(), slot_specs.end());
  const std::vector<exp::RunResult> results = exp::SweepRunner(jobs).Run(specs);

  std::printf("Figure 12(a): bandwidth gain from the second set of control fields\n");
  metrics::TablePrinter ta({"rho", "cf2_gain", "last_slot_pkts", "all_pkts",
                            "util_with", "util_without"},
                           14);
  ta.PrintHeader();
  std::size_t next = 0;
  for (const double rho : exp::LoadSweep()) {
    const exp::RunResult& on = results[next++];
    const exp::RunResult& off = results[next++];
    ta.PrintRow({rho, on.figure.second_cf_gain,
                 static_cast<double>(on.bs.last_slot_data_packets),
                 static_cast<double>(on.bs.data_packets_received), on.figure.utilization,
                 off.figure.utilization});
  }
  std::printf("(paper: 5%% to 14%% of packets ride in the last slot)\n\n");

  std::printf("Figure 12(b): average data slots used per cycle, 1 vs 4 GPS users\n");
  metrics::TablePrinter tb({"rho", "gps1_dynamic", "gps1_static", "gps4_dynamic",
                            "gps4_static"},
                           14);
  tb.PrintHeader();
  for (const double rho : exp::LoadSweep()) {
    std::vector<double> row = {rho};
    for (int arm = 0; arm < 4; ++arm) {
      row.push_back(results[next++].figure.avg_data_slots_used);
    }
    tb.PrintRow(row);
  }
  std::printf("(paper: with <= 3 GPS users the fused slot buys up to ~15%% more\n"
              " bandwidth at high load; with 4+ GPS users the arms coincide)\n");
  return 0;
}
