// Regenerates Figure 8: (a) reverse-link utilization and (b) packet delay
// versus the load index rho, for the paper's simulation scenario
// (variable-length messages uniform in [40, 500] bytes).
//
// Expected shapes (paper): utilization tracks the load while rho < 0.9 and
// falls below it as buffers overflow near saturation; delay stays at a few
// cycles under light/medium load and grows dramatically once the offered
// load crosses the usable capacity (the reserved contention slot and
// in-band headers put that crossover near rho ~ 0.8 in this
// implementation; see EXPERIMENTS.md).
#include <cstdio>

#include "sweep_common.h"

#include "bench_provenance.h"

using namespace osumac;
using namespace osumac::bench;

int main() {
  osumac::bench::PrintProvenance("bench_fig8_utilization_delay");
  // Variable-length messages (uniform 40-500 B), averaged over 3 seeds.
  metrics::TablePrinter table({"rho", "offered", "util", "util_sd", "pkt_delay",
                               "delay_sd", "msg_delay", "drop_rate"},
                              11);
  std::printf("Figure 8: utilization and packet delay vs load index\n");
  std::printf("-- variable-length messages, uniform 40-500 bytes (3 seeds) --\n");
  table.PrintHeader();
  for (double rho : LoadSweep()) {
    SweepPoint point;
    point.rho = rho;
    const auto rep = RunReplicated(point, 3, [rho](const SweepResult& r) {
      return std::vector<double>{r.offered_load, r.figure.utilization,
                                 r.figure.mean_packet_delay_cycles,
                                 r.figure.mean_message_delay_cycles,
                                 r.figure.message_drop_rate};
    });
    table.PrintRow({rho, rep[0].mean, rep[1].mean, rep[1].stddev, rep[2].mean,
                    rep[2].stddev, rep[3].mean, rep[4].mean});
  }

  // The paper's second workload: fixed 120-byte messages ("the results are
  // found to be quite robust" across both).
  std::printf("\n-- fixed-length messages, 120 bytes --\n");
  metrics::TablePrinter fixed_table({"rho", "offered", "util", "pkt_delay", "drop_rate"},
                                    11);
  fixed_table.PrintHeader();
  for (double rho : LoadSweep()) {
    SweepPoint point;
    point.rho = rho;
    point.sizes = traffic::SizeDistribution::Fixed(120);
    const SweepResult r = RunLoadPoint(point);
    fixed_table.PrintRow({rho, r.offered_load, r.figure.utilization,
                          r.figure.mean_packet_delay_cycles, r.figure.message_drop_rate});
  }
  std::printf("\n(delays in notification cycles of %.4f s; paper Fig. 8 shape: "
              "utilization ~ rho then saturates; delay flat then explodes)\n",
              ToSeconds(mac::kCycleTicks));
  return 0;
}
