// Regenerates Figure 8: (a) reverse-link utilization and (b) packet delay
// versus the load index rho, for the paper's simulation scenario
// (variable-length messages uniform in [40, 500] bytes).
//
// Expected shapes (paper): utilization tracks the load while rho < 0.9 and
// falls below it as buffers overflow near saturation; delay stays at a few
// cycles under light/medium load and grows dramatically once the offered
// load crosses the usable capacity (the reserved contention slot and
// in-band headers put that crossover near rho ~ 0.8 in this
// implementation; see EXPERIMENTS.md).
//
// All points run through exp::SweepRunner; pass --jobs N to parallelize.
#include <cstdio>
#include <vector>

#include "osumac/osumac.h"

#include "bench_provenance.h"

using namespace osumac;

int main(int argc, char** argv) {
  osumac::bench::PrintProvenance("bench_fig8_utilization_delay");
  const int jobs = exp::JobsFromArgs(argc, argv, 1);
  constexpr int kReplications = 3;

  // Variable-length points (3 seed replications each), then the paper's
  // second workload: fixed 120-byte messages ("the results are found to be
  // quite robust" across both) — one flat spec list, one sweep.
  std::vector<exp::ScenarioSpec> specs;
  for (const double rho : exp::LoadSweep()) {
    const std::vector<exp::ScenarioSpec> reps =
        exp::ExpandReplications(exp::LoadPoint(rho), kReplications);
    specs.insert(specs.end(), reps.begin(), reps.end());
  }
  for (const double rho : exp::LoadSweep()) {
    exp::ScenarioSpec point = exp::LoadPoint(rho);
    point.name += "_fixed120";
    point.workload.sizes = traffic::SizeDistribution::Fixed(120);
    specs.push_back(point);
  }
  const std::vector<exp::RunResult> results = exp::SweepRunner(jobs).Run(specs);

  metrics::TablePrinter table({"rho", "offered", "util", "util_sd", "pkt_delay",
                               "delay_sd", "msg_delay", "drop_rate"},
                              11);
  std::printf("Figure 8: utilization and packet delay vs load index\n");
  std::printf("-- variable-length messages, uniform 40-500 bytes (%d seeds) --\n",
              kReplications);
  table.PrintHeader();
  std::size_t next = 0;
  for (const double rho : exp::LoadSweep()) {
    RunningStats offered, util, pkt_delay, msg_delay, drop;
    for (int r = 0; r < kReplications; ++r) {
      const exp::RunResult& run = results[next++];
      offered.Add(run.offered_load);
      util.Add(run.figure.utilization);
      pkt_delay.Add(run.figure.mean_packet_delay_cycles);
      msg_delay.Add(run.figure.mean_message_delay_cycles);
      drop.Add(run.figure.message_drop_rate);
    }
    table.PrintRow({rho, offered.mean(), util.mean(), util.stddev(),
                    pkt_delay.mean(), pkt_delay.stddev(), msg_delay.mean(),
                    drop.mean()});
  }

  std::printf("\n-- fixed-length messages, 120 bytes --\n");
  metrics::TablePrinter fixed_table({"rho", "offered", "util", "pkt_delay", "drop_rate"},
                                    11);
  fixed_table.PrintHeader();
  for (const double rho : exp::LoadSweep()) {
    const exp::RunResult& r = results[next++];
    fixed_table.PrintRow({rho, r.offered_load, r.figure.utilization,
                          r.figure.mean_packet_delay_cycles, r.figure.message_drop_rate});
  }
  std::printf("\n(delays in notification cycles of %.4f s; paper Fig. 8 shape: "
              "utilization ~ rho then saturates; delay flat then explodes)\n",
              ToSeconds(mac::kCycleTicks));
  return 0;
}
