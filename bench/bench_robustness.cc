// Robustness sweep (Section 5): "the number of GPS users varying from 1 to
// 8, and the number of data users varying from 5 to 14 ... the results are
// found to be quite robust in the sense that the conclusion drawn from the
// performance curves is valid over a wide range of parameter values."
//
// At a fixed medium load (rho = 0.7) the key quantities must stay in their
// bands across the whole population grid: utilization near the load, delay
// a few cycles, fairness high, and the GPS bound intact.
#include <cstdio>
#include <vector>

#include "osumac/osumac.h"

#include "bench_provenance.h"

using namespace osumac;

int main(int argc, char** argv) {
  osumac::bench::PrintProvenance("bench_robustness");
  const int jobs = exp::JobsFromArgs(argc, argv, 1);

  std::vector<exp::ScenarioSpec> specs;
  for (const int data_users : {5, 8, 11, 14}) {
    for (const int gps_users : {1, 3, 4, 8}) {
      exp::ScenarioSpec point = exp::LoadPoint(0.7);
      point.name = "d" + std::to_string(data_users) + "_g" + std::to_string(gps_users);
      point.data_users = data_users;
      point.gps_users = gps_users;
      point.measure_cycles = 600;
      specs.push_back(point);
    }
  }
  const std::vector<exp::RunResult> results = exp::SweepRunner(jobs).Run(specs);

  std::printf("Robustness grid at rho = 0.7: data users x GPS users\n");
  metrics::TablePrinter table(
      {"data", "gps", "util", "pkt_delay", "fairness", "coll_prob", "gps_max_s"}, 12);
  table.PrintHeader();
  for (std::size_t i = 0; i < results.size(); ++i) {
    const exp::RunResult& r = results[i];
    table.PrintRow({static_cast<double>(specs[i].data_users),
                    static_cast<double>(specs[i].gps_users), r.figure.utilization,
                    r.figure.mean_packet_delay_cycles, r.figure.fairness_index,
                    r.figure.collision_probability, r.figure.gps_access_delay_max_s});
  }
  std::printf("\n(the paper's robustness claim: every row shows the same regime —\n"
              " utilization ~ 0.65-0.75, delay in single-digit cycles, fairness\n"
              " > 0.95, GPS access delay < 4 s)\n");
  return 0;
}
