// Regenerates Figure 9 (the paper's caption ordering): (a) probability of
// collision in contention slots and (b) average reservation latency, both
// versus the load index.
//
// Expected shape (paper, counter-intuitive): BOTH DECREASE as load grows,
// because at high load reservation requests ride piggybacked in the
// headers of scheduled data packets instead of contending.
#include <cstdio>
#include <vector>

#include "osumac/osumac.h"

#include "bench_provenance.h"

using namespace osumac;

int main(int argc, char** argv) {
  osumac::bench::PrintProvenance("bench_fig9_collision_reservation");
  const int jobs = exp::JobsFromArgs(argc, argv, 1);

  std::vector<exp::ScenarioSpec> specs;
  for (const double rho : exp::LoadSweep()) specs.push_back(exp::LoadPoint(rho));
  const std::vector<exp::RunResult> results = exp::SweepRunner(jobs).Run(specs);

  metrics::TablePrinter table(
      {"rho", "coll_prob", "resv_latency", "collisions", "resv_pkts", "piggybacked"}, 13);
  std::printf("Figure 9: contention-slot collision probability and reservation latency\n");
  table.PrintHeader();
  for (std::size_t i = 0; i < results.size(); ++i) {
    const exp::RunResult& r = results[i];
    // Piggybacked demand updates = data packets carrying a non-zero
    // more_slots field; approximate with decoded data packets minus
    // contention data (every scheduled packet may carry the field).
    table.PrintRow({specs[i].workload.rho, r.figure.collision_probability,
                    r.figure.mean_reservation_latency,
                    static_cast<double>(r.bs.collisions),
                    static_cast<double>(r.bs.reservation_packets_received),
                    static_cast<double>(r.bs.data_packets_received -
                                        r.bs.contention_data_received)});
  }
  std::printf("\n(latency in cycles from first reservation attempt to its ACK;\n"
              " paper Fig. 9 shape: both curves decrease with load)\n");
  return 0;
}
