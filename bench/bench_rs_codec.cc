// Microbenchmarks of the Reed-Solomon substrate (google-benchmark):
// encode, clean decode, decode with 1..8 errors, erasure decode — the
// operations on every packet and control field of the MAC.
#include <benchmark/benchmark.h>

#include "bench_provenance.h"
#include "common/rng.h"
#include "fec/reed_solomon.h"

using namespace osumac;
using fec::GfElem;
using fec::ReedSolomon;

namespace {

std::vector<GfElem> RandomData(int k, Rng& rng) {
  std::vector<GfElem> data(static_cast<std::size_t>(k));
  for (auto& b : data) b = static_cast<GfElem>(rng.UniformInt(0, 255));
  return data;
}

void BM_RsEncode6448(benchmark::State& state) {
  Rng rng(1);
  const auto& rs = ReedSolomon::Osu6448();
  const auto data = RandomData(rs.k(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.Encode(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * rs.k());
}
BENCHMARK(BM_RsEncode6448);

void BM_RsDecodeClean(benchmark::State& state) {
  Rng rng(2);
  const auto& rs = ReedSolomon::Osu6448();
  const auto cw = rs.Encode(RandomData(rs.k(), rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.Decode(cw));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * rs.k());
}
BENCHMARK(BM_RsDecodeClean);

void BM_RsDecodeWithErrors(benchmark::State& state) {
  const int errors = static_cast<int>(state.range(0));
  Rng rng(3);
  const auto& rs = ReedSolomon::Osu6448();
  auto cw = rs.Encode(RandomData(rs.k(), rng));
  for (int e = 0; e < errors; ++e) {
    cw[static_cast<std::size_t>(e * 7)] ^= static_cast<GfElem>(rng.UniformInt(1, 255));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.Decode(cw));
  }
}
BENCHMARK(BM_RsDecodeWithErrors)->DenseRange(1, 8);

void BM_RsDecodeFailure(benchmark::State& state) {
  // Beyond-capacity word: the decoder must detect and reject.
  Rng rng(4);
  const auto& rs = ReedSolomon::Osu6448();
  auto cw = rs.Encode(RandomData(rs.k(), rng));
  for (int e = 0; e < 16; ++e) {
    cw[static_cast<std::size_t>(e * 3)] ^= static_cast<GfElem>(rng.UniformInt(1, 255));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.Decode(cw));
  }
}
BENCHMARK(BM_RsDecodeFailure);

void BM_RsErasureDecode(benchmark::State& state) {
  const int erasures = static_cast<int>(state.range(0));
  Rng rng(5);
  const auto& rs = ReedSolomon::Osu6448();
  auto cw = rs.Encode(RandomData(rs.k(), rng));
  std::vector<int> positions;
  for (int e = 0; e < erasures; ++e) {
    positions.push_back(e * 3);
    cw[static_cast<std::size_t>(e * 3)] = 0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.DecodeWithErasures(cw, positions));
  }
}
BENCHMARK(BM_RsErasureDecode)->Arg(4)->Arg(8)->Arg(16);

void BM_GpsShortCode(benchmark::State& state) {
  // The RS(32,9) inner code of the 72-bit GPS reports.
  Rng rng(6);
  const ReedSolomon rs(32, 9);
  const auto cw = rs.Encode(RandomData(rs.k(), rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.Decode(cw));
  }
}
BENCHMARK(BM_GpsShortCode);

}  // namespace

OSUMAC_BENCHMARK_MAIN("bench_rs_codec");
